//! Column-major relations.
//!
//! Phase I of the mining algorithm streams every tuple once per attribute
//! set; columnar storage makes projecting onto a set a handful of contiguous
//! reads and mirrors how an analytic store would feed the miner.

use crate::error::CoreError;
use crate::schema::{AttrId, Schema};

/// An immutable relation: a [`Schema`] plus one `Vec<f64>` column per
/// attribute. Nominal attributes store category codes.
#[derive(Debug, Clone, PartialEq)]
pub struct Relation {
    schema: Schema,
    columns: Vec<Vec<f64>>,
    rows: usize,
}

impl Relation {
    /// The relation's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of tuples `|r|`.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// Whether the relation has no tuples.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// The value of attribute `attr` in tuple `row`.
    pub fn value(&self, row: usize, attr: AttrId) -> f64 {
        self.columns[attr][row]
    }

    /// The full column for `attr`.
    pub fn column(&self, attr: AttrId) -> &[f64] {
        &self.columns[attr]
    }

    /// Writes the projection of tuple `row` onto `attrs` into `buf`
    /// (cleared first). Avoids a fresh allocation per tuple in hot loops.
    pub fn project_into(&self, row: usize, attrs: &[AttrId], buf: &mut Vec<f64>) {
        buf.clear();
        buf.extend(attrs.iter().map(|&a| self.columns[a][row]));
    }

    /// The projection of tuple `row` onto `attrs` as a fresh vector.
    pub fn project(&self, row: usize, attrs: &[AttrId]) -> Vec<f64> {
        attrs.iter().map(|&a| self.columns[a][row]).collect()
    }

    /// The full tuple at `row`.
    pub fn row(&self, row: usize) -> Vec<f64> {
        (0..self.columns.len()).map(|a| self.columns[a][row]).collect()
    }

    /// Builds a relation directly from columns.
    pub fn from_columns(schema: Schema, columns: Vec<Vec<f64>>) -> Result<Self, CoreError> {
        if columns.len() != schema.arity() {
            return Err(CoreError::ArityMismatch { expected: schema.arity(), got: columns.len() });
        }
        let rows = columns.first().map_or(0, Vec::len);
        for col in &columns {
            if col.len() != rows {
                return Err(CoreError::ArityMismatch { expected: rows, got: col.len() });
            }
        }
        for (a, col) in columns.iter().enumerate() {
            if let Some(row) = col.iter().position(|v| !v.is_finite()) {
                return Err(CoreError::NonFiniteValue { attr: a, row });
            }
        }
        Ok(Relation { schema, columns, rows })
    }
}

/// Row-at-a-time builder for [`Relation`].
///
/// ```
/// use dar_core::{RelationBuilder, Schema};
/// let mut b = RelationBuilder::new(Schema::interval_attrs(2));
/// b.push_row(&[1.0, 10.0]).unwrap();
/// b.push_row(&[2.0, 20.0]).unwrap();
/// let relation = b.finish();
/// assert_eq!(relation.len(), 2);
/// assert_eq!(relation.column(1), &[10.0, 20.0]);
/// // NaN and wrong arity are rejected up front.
/// let mut bad = RelationBuilder::new(Schema::interval_attrs(2));
/// assert!(bad.push_row(&[f64::NAN, 0.0]).is_err());
/// assert!(bad.push_row(&[1.0]).is_err());
/// ```
#[derive(Debug, Clone)]
pub struct RelationBuilder {
    schema: Schema,
    columns: Vec<Vec<f64>>,
    rows: usize,
}

impl RelationBuilder {
    /// Starts building a relation with the given schema.
    pub fn new(schema: Schema) -> Self {
        let arity = schema.arity();
        RelationBuilder { schema, columns: vec![Vec::new(); arity], rows: 0 }
    }

    /// Starts building with per-column capacity reserved for `rows` tuples.
    pub fn with_capacity(schema: Schema, rows: usize) -> Self {
        let arity = schema.arity();
        RelationBuilder {
            schema,
            columns: (0..arity).map(|_| Vec::with_capacity(rows)).collect(),
            rows: 0,
        }
    }

    /// Appends one tuple.
    pub fn push_row(&mut self, row: &[f64]) -> Result<(), CoreError> {
        if row.len() != self.columns.len() {
            return Err(CoreError::ArityMismatch { expected: self.columns.len(), got: row.len() });
        }
        if let Some(attr) = row.iter().position(|v| !v.is_finite()) {
            return Err(CoreError::NonFiniteValue { attr, row: self.rows });
        }
        for (col, &v) in self.columns.iter_mut().zip(row) {
            col.push(v);
        }
        self.rows += 1;
        Ok(())
    }

    /// Number of rows pushed so far.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// Whether no rows have been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Finishes the build.
    pub fn finish(self) -> Relation {
        Relation { schema: self.schema, columns: self.columns, rows: self.rows }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Attribute;

    fn build() -> Relation {
        let schema = Schema::new(vec![Attribute::interval("x"), Attribute::interval("y")]);
        let mut b = RelationBuilder::with_capacity(schema, 3);
        b.push_row(&[1.0, 10.0]).unwrap();
        b.push_row(&[2.0, 20.0]).unwrap();
        b.push_row(&[3.0, 30.0]).unwrap();
        b.finish()
    }

    #[test]
    fn builder_roundtrip() {
        let r = build();
        assert_eq!(r.len(), 3);
        assert!(!r.is_empty());
        assert_eq!(r.value(1, 0), 2.0);
        assert_eq!(r.value(2, 1), 30.0);
        assert_eq!(r.column(1), &[10.0, 20.0, 30.0]);
        assert_eq!(r.row(0), vec![1.0, 10.0]);
    }

    #[test]
    fn projection() {
        let r = build();
        assert_eq!(r.project(1, &[1]), vec![20.0]);
        let mut buf = vec![99.0];
        r.project_into(2, &[1, 0], &mut buf);
        assert_eq!(buf, vec![30.0, 3.0]);
    }

    #[test]
    fn arity_mismatch_rejected() {
        let schema = Schema::interval_attrs(2);
        let mut b = RelationBuilder::new(schema);
        assert_eq!(b.push_row(&[1.0]), Err(CoreError::ArityMismatch { expected: 2, got: 1 }));
    }

    #[test]
    fn non_finite_rejected() {
        let schema = Schema::interval_attrs(2);
        let mut b = RelationBuilder::new(schema.clone());
        assert_eq!(
            b.push_row(&[1.0, f64::NAN]),
            Err(CoreError::NonFiniteValue { attr: 1, row: 0 })
        );
        let err = Relation::from_columns(schema, vec![vec![1.0], vec![f64::INFINITY]]);
        assert_eq!(err.unwrap_err(), CoreError::NonFiniteValue { attr: 1, row: 0 });
    }

    #[test]
    fn from_columns_checks_shape() {
        let schema = Schema::interval_attrs(2);
        let err = Relation::from_columns(schema.clone(), vec![vec![1.0]]);
        assert!(matches!(err, Err(CoreError::ArityMismatch { .. })));
        let err = Relation::from_columns(schema, vec![vec![1.0], vec![1.0, 2.0]]);
        assert!(matches!(err, Err(CoreError::ArityMismatch { .. })));
    }

    #[test]
    fn empty_relation() {
        let schema = Schema::interval_attrs(1);
        let r = RelationBuilder::new(schema).finish();
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
    }
}
