//! Cluster summaries — the unit Phase I hands to Phase II.

use crate::acf::Acf;
use crate::bbox::BoundingBox;
use crate::schema::SetId;
use std::fmt;

/// Globally unique cluster identifier within one mining run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClusterId(pub u32);

impl fmt::Display for ClusterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// A discovered cluster `C_X`: its identifier, home attribute set, and ACF
/// summary (which embeds the home bounding box used for descriptions).
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSummary {
    /// Unique id within the mining run.
    pub id: ClusterId,
    /// The attribute set the cluster is defined on.
    pub set: SetId,
    /// The association clustering feature summarizing the member tuples.
    pub acf: Acf,
}

impl ClusterSummary {
    /// Number of member tuples (`|C_X|`, the frequency of Dfn 4.2).
    pub fn support(&self) -> u64 {
        self.acf.n()
    }

    /// Home-set diameter (the density measure of Dfn 4.2).
    pub fn diameter(&self) -> f64 {
        self.acf.diameter()
    }

    /// Smallest bounding box on the home set.
    pub fn bbox(&self) -> &BoundingBox {
        self.acf.bbox()
    }

    /// Whether the cluster meets the frequency threshold `|C_X| ≥ s0`.
    pub fn is_frequent(&self, s0: u64) -> bool {
        self.support() >= s0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acf::AcfLayout;

    #[test]
    fn summary_accessors() {
        let layout = AcfLayout::new(vec![1, 1]);
        let mut acf = Acf::empty(&layout, 0);
        acf.add_row(&[vec![1.0], vec![5.0]]);
        acf.add_row(&[vec![2.0], vec![6.0]]);
        let c = ClusterSummary { id: ClusterId(7), set: 0, acf };
        assert_eq!(c.support(), 2);
        assert!(c.is_frequent(2));
        assert!(!c.is_frequent(3));
        assert!((c.diameter() - 1.0).abs() < 1e-12);
        assert_eq!(c.bbox().interval(0).lo, 1.0);
        assert_eq!(c.id.to_string(), "c7");
    }
}
