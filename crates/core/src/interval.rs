//! Closed intervals `(A, l, u)` on a single attribute (Section 4.2).

use std::fmt;

/// A closed interval `[lo, hi]` over one attribute's domain.
///
/// The paper writes an interval as `(A, l, u)` with `l ≤ u`; the attribute
/// association is carried externally (by position in a bounding box, or by an
/// `AttrId` at the call site).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Lower bound (inclusive).
    pub lo: f64,
    /// Upper bound (inclusive).
    pub hi: f64,
}

impl Interval {
    /// Creates an interval, normalizing bound order.
    pub fn new(a: f64, b: f64) -> Self {
        if a <= b {
            Interval { lo: a, hi: b }
        } else {
            Interval { lo: b, hi: a }
        }
    }

    /// The degenerate interval containing a single point.
    pub fn point(v: f64) -> Self {
        Interval { lo: v, hi: v }
    }

    /// `hi - lo`; the "range" quality measure mentioned in Section 4.1.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Whether `v` falls inside the closed interval.
    pub fn contains(&self, v: f64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Whether the two intervals share at least one point.
    pub fn overlaps(&self, other: &Interval) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }

    /// Smallest interval covering both operands.
    pub fn hull(&self, other: &Interval) -> Interval {
        Interval { lo: self.lo.min(other.lo), hi: self.hi.max(other.hi) }
    }

    /// Extends the interval to cover `v`.
    pub fn extend(&mut self, v: f64) {
        if v < self.lo {
            self.lo = v;
        }
        if v > self.hi {
            self.hi = v;
        }
    }

    /// Midpoint of the interval.
    pub fn mid(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.lo == self.hi {
            write!(f, "[{}]", self.lo)
        } else {
            write!(f, "[{}, {}]", self.lo, self.hi)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_normalizes_order() {
        let i = Interval::new(5.0, 2.0);
        assert_eq!(i.lo, 2.0);
        assert_eq!(i.hi, 5.0);
        assert_eq!(i.width(), 3.0);
        assert_eq!(i.mid(), 3.5);
    }

    #[test]
    fn contains_is_closed() {
        let i = Interval::new(1.0, 3.0);
        assert!(i.contains(1.0));
        assert!(i.contains(3.0));
        assert!(i.contains(2.0));
        assert!(!i.contains(0.999));
        assert!(!i.contains(3.001));
    }

    #[test]
    fn overlap_and_hull() {
        let a = Interval::new(0.0, 2.0);
        let b = Interval::new(2.0, 4.0);
        let c = Interval::new(5.0, 6.0);
        assert!(a.overlaps(&b)); // touching endpoints overlap (closed)
        assert!(!a.overlaps(&c));
        let h = a.hull(&c);
        assert_eq!(h, Interval::new(0.0, 6.0));
    }

    #[test]
    fn extend_grows_both_ways() {
        let mut i = Interval::point(1.0);
        i.extend(4.0);
        i.extend(-1.0);
        i.extend(2.0); // interior: no change
        assert_eq!(i, Interval::new(-1.0, 4.0));
    }

    #[test]
    fn display() {
        assert_eq!(Interval::point(2.0).to_string(), "[2]");
        assert_eq!(Interval::new(1.0, 2.5).to_string(), "[1, 2.5]");
    }
}
