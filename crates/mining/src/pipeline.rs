//! The end-to-end DAR miner: Phase I (adaptive clustering) + Phase II
//! (clustering graph → cliques → rules), with instrumentation for every
//! number reported in the paper's Section 7.

use crate::assign::CentroidIndex;
use crate::graph::{ClusterDistance, ClusteringGraph};
use crate::query::{DensitySpec, Phase2Artifacts, RuleQuery};
use crate::rules::Dar;
use birch::{refine_forest_output, AcfForest, BirchConfig, ForestStats};
use dar_core::{Cf, ClusterId, ClusterSummary, CoreError, Partitioning, Relation, SetId};
use std::time::{Duration, Instant};

/// Configuration of a full mining run: the Phase I scan parameters plus one
/// embedded [`RuleQuery`] holding the re-tunable Phase II parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct DarConfig {
    /// Phase I clustering engine configuration (per-tree).
    pub birch: BirchConfig,
    /// Per-set initial diameter thresholds, overriding
    /// `birch.initial_threshold` — use when attribute sets live on
    /// different scales (the paper selects a threshold per `X_i`,
    /// Section 4.3.1). `None` applies `birch.initial_threshold` uniformly.
    pub initial_thresholds: Option<Vec<f64>>,
    /// Frequency threshold `s0` as a fraction of the relation size
    /// (the paper's experiments used 3%).
    pub min_support_frac: f64,
    /// Inter-cluster distance used for the graph and rules.
    pub metric: ClusterDistance,
    /// Enable the Section 6.2 poor-density pruning heuristic.
    pub prune_poor_density: bool,
    /// Clique-count cap (0 = unbounded).
    pub max_cliques: usize,
    /// The re-tunable Phase II parameters: density spec, degree factor,
    /// rule arity and budgets (see [`RuleQuery`]).
    pub query: RuleQuery,
    /// Rescan the data once to count exact candidate-rule frequencies
    /// (Section 6.2's optional post-processing step).
    pub rescan_candidate_frequency: bool,
    /// Run the global refinement pass (BIRCH "Phase 3") after the scan:
    /// agglomeratively merge leaf clusters whose union still satisfies the
    /// per-tree diameter threshold, undoing order-dependent splits — the
    /// "non-optimal clustering strategy" drift the paper measures in
    /// Section 7.2.
    pub refine_clusters: bool,
    /// Worker threads for the data-parallel regions (Phase I tree fan-out,
    /// Phase II graph rows and clique components). `0` means the host's
    /// available parallelism. The mined rules are byte-identical at every
    /// setting — both phases decompose into independent shards (Dfn 4.2
    /// partitions; Theorem 6.1 summary-only distances) recombined by
    /// deterministic ordered reductions — so this knob trades wall-clock
    /// only, never output.
    pub threads: usize,
}

impl Default for DarConfig {
    fn default() -> Self {
        DarConfig {
            birch: BirchConfig::default(),
            initial_thresholds: None,
            min_support_frac: 0.03,
            metric: ClusterDistance::D2,
            prune_poor_density: true,
            max_cliques: 100_000,
            query: RuleQuery::default(),
            rescan_candidate_frequency: false,
            refine_clusters: false,
            threads: 0,
        }
    }
}

/// Instrumentation collected across a mining run — every quantity the
/// paper's evaluation section reports.
#[derive(Debug, Clone)]
pub struct MineStats {
    /// Wall-clock time of Phase I (scan + tree maintenance).
    pub phase1: Duration,
    /// Wall-clock time of Phase II (graph + cliques + rules).
    pub phase2: Duration,
    /// Tuples scanned.
    pub tuples: usize,
    /// Clusters found by Phase I (all, before the frequency filter).
    pub clusters_total: usize,
    /// Clusters meeting the frequency threshold (the graph's nodes).
    pub clusters_frequent: usize,
    /// The absolute frequency threshold `s0` used.
    pub s0: u64,
    /// Edges in the clustering graph.
    pub graph_edges: usize,
    /// Cluster-pair distance evaluations performed.
    pub graph_comparisons: u64,
    /// Node–set combinations skipped by the pruning heuristic.
    pub graph_pruned_images: usize,
    /// Maximal cliques found.
    pub cliques: usize,
    /// Cliques of size ≥ 2.
    pub nontrivial_cliques: usize,
    /// Whether clique enumeration hit the cap.
    pub cliques_truncated: bool,
    /// Rules emitted.
    pub rules: usize,
    /// Whether rule generation hit a budget (`max_rules`/`max_pair_work`).
    pub rules_truncated: bool,
    /// Per-set density thresholds actually used in Phase II.
    pub density_thresholds: Vec<f64>,
    /// Phase I tree diagnostics.
    pub forest: ForestStats,
}

/// The complete result of a mining run.
#[derive(Debug, Clone)]
pub struct MineResult {
    /// All Phase I clusters (frequent and not), with ids.
    pub clusters: Vec<ClusterSummary>,
    /// The clustering graph over the frequent clusters.
    pub graph: ClusteringGraph,
    /// Maximal cliques (indices into `graph.clusters()`).
    pub cliques: Vec<Vec<usize>>,
    /// The mined distance-based association rules.
    pub rules: Vec<Dar>,
    /// Exact rule frequencies from the optional rescan; parallel to
    /// `rules`. Empty when the rescan is disabled.
    pub rule_frequencies: Vec<u64>,
    /// Run statistics.
    pub stats: MineStats,
}

/// The two-phase distance-based association rule miner.
#[derive(Debug, Clone)]
pub struct DarMiner {
    config: DarConfig,
}

impl DarMiner {
    /// Creates a miner with the given configuration.
    pub fn new(config: DarConfig) -> Self {
        DarMiner { config }
    }

    /// A miner with default configuration.
    pub fn with_defaults() -> Self {
        DarMiner::new(DarConfig::default())
    }

    /// The configuration.
    pub fn config(&self) -> &DarConfig {
        &self.config
    }

    /// Runs both phases over `relation` under `partitioning`.
    ///
    /// # Errors
    /// Returns [`CoreError`] when the partitioning references attributes
    /// outside the relation's schema, or when configured threshold vectors
    /// have the wrong arity.
    pub fn mine(
        &self,
        relation: &Relation,
        partitioning: &Partitioning,
    ) -> Result<MineResult, CoreError> {
        self.validate(relation, partitioning)?;
        let mut result =
            self.mine_rows((0..relation.len()).map(|row| relation.row(row)), partitioning)?;
        if self.config.rescan_candidate_frequency {
            result.rule_frequencies = rescan_frequencies_pooled(
                relation,
                partitioning,
                result.graph.clusters(),
                &result.rules,
                &dar_par::ThreadPool::resolve(self.config.threads),
            );
        }
        Ok(result)
    }

    /// Single-pass streaming variant: mines from an iterator of full tuples
    /// (indexed by attribute, matching the partitioning's id space) without
    /// materializing a relation. The optional candidate-frequency rescan is
    /// unavailable in this mode (it would need a second pass over the
    /// data), so `rule_frequencies` is always empty.
    ///
    /// # Errors
    /// Returns [`CoreError`] on threshold-arity mismatches; rows shorter
    /// than the partitioning's attribute space panic in debug builds.
    pub fn mine_rows(
        &self,
        rows: impl IntoIterator<Item = Vec<f64>>,
        partitioning: &Partitioning,
    ) -> Result<MineResult, CoreError> {
        self.validate_thresholds(partitioning)?;
        let pool = dar_par::ThreadPool::resolve(self.config.threads);
        // ---------------- Phase I ----------------
        let t0 = Instant::now();
        let mut forest = match &self.config.initial_thresholds {
            Some(t) => {
                AcfForest::with_initial_thresholds(partitioning.clone(), &self.config.birch, t)
            }
            None => AcfForest::new(partitioning.clone(), &self.config.birch),
        };
        // Buffer the stream into batches and fan each batch across the
        // per-set trees. Every tree still sees every row in stream order,
        // so the forest is bit-identical to the row-at-a-time serial scan.
        const SCAN_BATCH: usize = 4096;
        let mut tuples = 0usize;
        let mut batch: Vec<Vec<f64>> = Vec::with_capacity(SCAN_BATCH);
        for row in rows {
            batch.push(row);
            if batch.len() == SCAN_BATCH {
                forest.insert_batch(&batch, &pool);
                tuples += batch.len();
                batch.clear();
            }
        }
        forest.insert_batch(&batch, &pool);
        tuples += batch.len();
        drop(batch);
        let forest_stats = forest.stats();
        let tree_thresholds: Vec<f64> = forest_stats.trees.iter().map(|t| t.threshold).collect();
        let mut per_set = forest.finish();
        if self.config.refine_clusters {
            per_set = refine_forest_output(per_set, &tree_thresholds);
        }
        let phase1 = t0.elapsed();

        // Assign ids; keep every cluster for inspection.
        let mut clusters = Vec::new();
        let mut next_id = 0u32;
        for (set, acfs) in per_set.into_iter().enumerate() {
            for acf in acfs {
                clusters.push(ClusterSummary { id: ClusterId(next_id), set, acf });
                next_id += 1;
            }
        }

        // ---------------- Phase II ----------------
        let t1 = Instant::now();
        let s0 = ((self.config.min_support_frac * tuples as f64).ceil() as u64).max(1);
        let frequent: Vec<ClusterSummary> =
            clusters.iter().filter(|c| c.is_frequent(s0)).cloned().collect();

        let density = self.config.query.density.resolve(
            &clusters,
            &tree_thresholds,
            partitioning.num_sets(),
        )?;
        let artifacts = Phase2Artifacts::build_pooled(
            frequent,
            density,
            self.config.metric,
            self.config.prune_poor_density,
            self.config.max_cliques,
            &pool,
        );
        let (rules, rules_truncated) = artifacts.mine(self.config.metric, &self.config.query);
        let phase2 = t1.elapsed();

        let Phase2Artifacts { density_thresholds, graph, cliques, cliques_truncated } = artifacts;
        let stats = MineStats {
            phase1,
            phase2,
            tuples,
            clusters_total: clusters.len(),
            clusters_frequent: graph.len(),
            s0,
            graph_edges: graph.edges,
            graph_comparisons: graph.comparisons,
            graph_pruned_images: graph.pruned_images,
            cliques: cliques.len(),
            nontrivial_cliques: crate::clique::non_trivial(&cliques),
            cliques_truncated,
            rules: rules.len(),
            rules_truncated,
            density_thresholds,
            forest: forest_stats,
        };
        Ok(MineResult { clusters, graph, cliques, rules, rule_frequencies: Vec::new(), stats })
    }

    fn validate(&self, relation: &Relation, partitioning: &Partitioning) -> Result<(), CoreError> {
        let arity = relation.schema().arity();
        for set in partitioning.sets() {
            if let Some(&bad) = set.attrs.iter().find(|&&a| a >= arity) {
                return Err(CoreError::UnknownAttribute(bad));
            }
        }
        self.validate_thresholds(partitioning)
    }

    fn validate_thresholds(&self, partitioning: &Partitioning) -> Result<(), CoreError> {
        let num_sets = partitioning.num_sets();
        if let Some(t) = &self.config.initial_thresholds {
            if t.len() != num_sets {
                return Err(CoreError::InvalidPartitioning(format!(
                    "initial_thresholds has {} entries but the partitioning has {num_sets} sets",
                    t.len()
                )));
            }
        }
        if let DensitySpec::Explicit(t) = &self.config.query.density {
            if t.len() != num_sets {
                return Err(CoreError::InvalidPartitioning(format!(
                    "density thresholds have {} entries but the partitioning has {num_sets} sets",
                    t.len()
                )));
            }
        }
        Ok(())
    }
}

/// Auto-derives per-set Phase II density thresholds from the Phase I
/// output: per set, the base scale is the largest of (a) the final tree
/// threshold, (b) the median diameter of the set's clusters, and (c) 10% of
/// the column's RMS radius (a floor for the fully-precise case where every
/// cluster is a single value and both (a) and (b) are 0); the threshold is
/// `factor ×` that base. Pass *all* Phase I clusters, not only the frequent
/// ones, so the column statistics stay meaningful at high support
/// thresholds.
pub fn auto_density_thresholds(
    frequent: &[ClusterSummary],
    tree_thresholds: &[f64],
    num_sets: usize,
    factor: f64,
) -> Vec<f64> {
    (0..num_sets)
        .map(|set| {
            let mut diameters: Vec<f64> =
                frequent.iter().filter(|c| c.set == set).map(ClusterSummary::diameter).collect();
            diameters.sort_by(f64::total_cmp);
            let median = diameters.get(diameters.len() / 2).copied().unwrap_or(0.0);
            // Column RMS radius from the union of the set's clusters.
            let column_radius = column_cf(frequent, set).map_or(0.0, |cf| cf.radius());
            let base = tree_thresholds
                .get(set)
                .copied()
                .unwrap_or(0.0)
                .max(median)
                .max(0.1 * column_radius);
            factor * base
        })
        .collect()
}

/// Sum of the home CFs of a set's clusters = the CF of the whole column
/// restricted to clustered tuples.
fn column_cf(clusters: &[ClusterSummary], set: SetId) -> Option<Cf> {
    let mut iter = clusters.iter().filter(|c| c.set == set);
    let first = iter.next()?;
    let mut cf = first.acf.home_cf().clone();
    for c in iter {
        cf.merge(c.acf.home_cf());
    }
    Some(cf)
}

/// The optional Section 6.2 post-processing: one extra scan counting, for
/// each candidate rule, the tuples assigned (by nearest centroid) to every
/// one of its clusters.
///
/// `clusters` is the slice the rules' antecedent/consequent positions
/// index into — a graph's [`ClusteringGraph::clusters`] in the one-shot
/// pipeline, or a deserialized `mining::persist` shipment in the
/// distributed SON-style verify pass (`dar-cluster`), where each shard
/// rescans only its own partition of the data and the coordinator sums
/// the per-shard counts (exact, because the partitions are disjoint).
pub fn rescan_frequencies(
    relation: &Relation,
    partitioning: &Partitioning,
    clusters: &[ClusterSummary],
    rules: &[Dar],
) -> Vec<u64> {
    rescan_frequencies_pooled(
        relation,
        partitioning,
        clusters,
        rules,
        &dar_par::ThreadPool::serial(),
    )
}

/// [`rescan_frequencies`] with the row scan partitioned across `pool`.
/// Each worker counts a disjoint row range against the shared centroid
/// indexes and the per-range `u64` vectors are summed element-wise — an
/// exact, associative reduction, so the counts are identical to the
/// serial scan at any worker count.
pub fn rescan_frequencies_pooled(
    relation: &Relation,
    partitioning: &Partitioning,
    clusters: &[ClusterSummary],
    rules: &[Dar],
    pool: &dar_par::ThreadPool,
) -> Vec<u64> {
    const ROW_CHUNK: usize = 1024;
    let indexes: Vec<CentroidIndex> = (0..partitioning.num_sets())
        .map(|set| CentroidIndex::new(clusters, set, partitioning.set(set).metric))
        .collect();
    let chunks = relation.len().div_ceil(ROW_CHUNK);
    let partials = pool.map_indexed("rescan", chunks, 1, |ci| {
        let mut counts = vec![0u64; rules.len()];
        let mut buf = Vec::new();
        // assigned[set] = graph position of the row's nearest cluster on
        // `set`.
        let mut assigned: Vec<Option<usize>> = vec![None; partitioning.num_sets()];
        for row in ci * ROW_CHUNK..((ci + 1) * ROW_CHUNK).min(relation.len()) {
            for (set, index) in indexes.iter().enumerate() {
                relation.project_into(row, &partitioning.set(set).attrs, &mut buf);
                assigned[set] = index.nearest(&buf).map(|(pos, _)| pos);
            }
            for (rule, count) in rules.iter().zip(&mut counts) {
                let holds = rule
                    .antecedent
                    .iter()
                    .chain(&rule.consequent)
                    .all(|&pos| assigned[clusters[pos].set] == Some(pos));
                if holds {
                    *count += 1;
                }
            }
        }
        counts
    });
    let mut counts = vec![0u64; rules.len()];
    for partial in partials {
        for (total, part) in counts.iter_mut().zip(partial) {
            *total += part;
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use dar_core::{Metric, RelationBuilder, Schema};

    /// Three attributes with two co-occurring value blocks: rows are either
    /// (≈0, ≈100, ≈5) or (≈50, ≈200, ≈9).
    fn blocks(n_per: usize) -> Relation {
        let mut b = RelationBuilder::new(Schema::interval_attrs(3));
        for i in 0..n_per {
            let j = (i % 7) as f64 * 0.01;
            b.push_row(&[j, 100.0 + j, 5.0 + j * 0.1]).unwrap();
            b.push_row(&[50.0 + j, 200.0 + j, 9.0 + j * 0.1]).unwrap();
        }
        b.finish()
    }

    fn miner() -> DarMiner {
        DarMiner::new(DarConfig {
            birch: BirchConfig {
                initial_threshold: 1.0,
                memory_budget: usize::MAX,
                ..BirchConfig::default()
            },
            min_support_frac: 0.1,
            rescan_candidate_frequency: true,
            ..DarConfig::default()
        })
    }

    #[test]
    fn embedded_query_matches_standalone_artifacts() {
        // The pipeline's Phase II must be exactly "build artifacts, mine
        // query" — the contract the caching engine relies on.
        let r = blocks(50);
        let p = Partitioning::per_attribute(r.schema(), Metric::Euclidean);
        let mut config = miner().config().clone();
        config.rescan_candidate_frequency = false;
        let m = DarMiner::new(config.clone());
        let result = m.mine(&r, &p).expect("valid partitioning");
        let frequent: Vec<ClusterSummary> =
            result.clusters.iter().filter(|c| c.is_frequent(result.stats.s0)).cloned().collect();
        let artifacts = Phase2Artifacts::build(
            frequent,
            result.stats.density_thresholds.clone(),
            config.metric,
            config.prune_poor_density,
            config.max_cliques,
        );
        let (rules, truncated) = artifacts.mine(config.metric, &config.query);
        assert_eq!(rules, result.rules);
        assert_eq!(truncated, result.stats.rules_truncated);
        assert_eq!(artifacts.cliques, result.cliques);
    }

    #[test]
    fn parallel_mining_is_byte_identical_to_serial() {
        let r = blocks(300);
        let p = Partitioning::per_attribute(r.schema(), Metric::Euclidean);
        let mut config = miner().config().clone();
        config.rescan_candidate_frequency = false;
        config.threads = 1;
        let serial = DarMiner::new(config.clone()).mine(&r, &p).expect("serial mine");
        for threads in [2usize, 4, 8] {
            config.threads = threads;
            let par = DarMiner::new(config.clone()).mine(&r, &p).expect("parallel mine");
            assert_eq!(par.rules, serial.rules, "threads={threads}");
            assert_eq!(par.cliques, serial.cliques, "threads={threads}");
            assert_eq!(par.stats.clusters_total, serial.stats.clusters_total);
            assert_eq!(par.stats.graph_edges, serial.stats.graph_edges);
            assert_eq!(par.stats.graph_comparisons, serial.stats.graph_comparisons);
            assert_eq!(par.stats.density_thresholds, serial.stats.density_thresholds);
        }
    }

    #[test]
    fn parallel_rescan_counts_are_identical_to_serial() {
        let r = blocks(700); // several 1024-row chunks with a ragged tail
        let p = Partitioning::per_attribute(r.schema(), Metric::Euclidean);
        let result = miner().mine(&r, &p).expect("valid partitioning");
        let clusters = result.graph.clusters();
        let serial = rescan_frequencies(&r, &p, clusters, &result.rules);
        assert_eq!(serial, result.rule_frequencies, "mine's pooled rescan matches serial");
        for workers in [1usize, 2, 4, 8] {
            let pool = dar_par::ThreadPool::new(workers);
            let pooled = rescan_frequencies_pooled(&r, &p, clusters, &result.rules, &pool);
            assert_eq!(pooled, serial, "workers={workers}");
        }
    }

    #[test]
    fn end_to_end_finds_block_rules() {
        let r = blocks(50);
        let p = Partitioning::per_attribute(r.schema(), Metric::Euclidean);
        let result = miner().mine(&r, &p).expect("valid partitioning");

        // Phase I: two clusters per attribute (6 total), all frequent.
        assert_eq!(result.stats.clusters_total, 6, "{:?}", result.stats);
        assert_eq!(result.stats.clusters_frequent, 6);
        assert_eq!(result.stats.s0, 10);
        // Graph: each block forms a triangle across the three sets.
        assert_eq!(result.stats.graph_edges, 6);
        assert_eq!(result.stats.nontrivial_cliques, 2);
        assert!(!result.stats.cliques_truncated);
        // Rules exist, and some N:1 rule spans a whole block.
        assert!(result.stats.rules > 0);
        assert!(result.rules.iter().any(|r| r.antecedent.len() == 2 && r.consequent.len() == 1));
        // The rescan says every block rule is backed by ~half the tuples.
        assert_eq!(result.rule_frequencies.len(), result.rules.len());
        let max_freq = result.rule_frequencies.iter().copied().max().unwrap();
        assert_eq!(max_freq, 50);
        // Degrees are within the normalized threshold.
        assert!(result.rules.iter().all(|r| r.degree <= 1.0 + 1e-9));
    }

    #[test]
    fn infrequent_clusters_are_excluded_from_the_graph() {
        // Add a tiny third block below the support threshold.
        let mut b = RelationBuilder::new(Schema::interval_attrs(3));
        for i in 0..50 {
            let j = (i % 7) as f64 * 0.01;
            b.push_row(&[j, 100.0 + j, 5.0 + j * 0.1]).unwrap();
        }
        for _ in 0..2 {
            b.push_row(&[999.0, 999.0, 999.0]).unwrap();
        }
        let r = b.finish();
        let p = Partitioning::per_attribute(r.schema(), Metric::Euclidean);
        let result = miner().mine(&r, &p).expect("valid partitioning");
        assert_eq!(result.stats.clusters_total, 6);
        assert_eq!(result.stats.clusters_frequent, 3, "the 999-block is infrequent");
    }

    #[test]
    fn explicit_density_thresholds_are_respected() {
        let r = blocks(50);
        let p = Partitioning::per_attribute(r.schema(), Metric::Euclidean);
        let mut config = miner().config().clone();
        config.query.density = DensitySpec::Explicit(vec![1e-9, 1e-9, 1e-9]);
        let result = DarMiner::new(config).mine(&r, &p).expect("valid partitioning");
        assert_eq!(result.stats.graph_edges, 0, "tiny thresholds forbid edges");
        assert_eq!(result.stats.rules, 0);
        assert_eq!(result.stats.density_thresholds, vec![1e-9, 1e-9, 1e-9]);
    }

    #[test]
    fn auto_thresholds_fall_back_to_column_scale() {
        // Fully precise clustering (threshold 0, singleton clusters) must
        // still produce positive density thresholds via the column floor.
        let r = blocks(50);
        let p = Partitioning::per_attribute(r.schema(), Metric::Euclidean);
        let mut config = miner().config().clone();
        config.birch.initial_threshold = 0.0;
        let result = DarMiner::new(config).mine(&r, &p).expect("valid partitioning");
        assert!(result.stats.density_thresholds.iter().all(|&d| d > 0.0));
    }

    #[test]
    fn empty_relation_mines_nothing() {
        let r = RelationBuilder::new(Schema::interval_attrs(2)).finish();
        let p = Partitioning::per_attribute(r.schema(), Metric::Euclidean);
        let result = miner().mine(&r, &p).expect("valid partitioning");
        assert_eq!(result.stats.clusters_total, 0);
        assert_eq!(result.stats.rules, 0);
    }

    #[test]
    fn mine_rows_streaming_matches_batch_mining() {
        let r = blocks(50);
        let p = Partitioning::per_attribute(r.schema(), Metric::Euclidean);
        let mut config = miner().config().clone();
        config.rescan_candidate_frequency = false;
        let m = DarMiner::new(config);
        let batch = m.mine(&r, &p).expect("valid partitioning");
        let streamed = m.mine_rows((0..r.len()).map(|i| r.row(i)), &p).expect("valid thresholds");
        assert_eq!(batch.rules, streamed.rules);
        assert_eq!(batch.stats.clusters_total, streamed.stats.clusters_total);
        assert_eq!(batch.stats.graph_edges, streamed.stats.graph_edges);
        assert_eq!(batch.stats.tuples, streamed.stats.tuples);
        // Streaming never has frequencies.
        assert!(streamed.rule_frequencies.is_empty());
    }

    #[test]
    fn mine_validates_partitioning_and_threshold_arity() {
        use dar_core::AttrSet;
        let r = blocks(10);
        // Partitioning built against a *wider* schema references attr 5.
        let wide = Schema::interval_attrs(6);
        let p =
            Partitioning::new(&wide, vec![AttrSet { attrs: vec![5], metric: Metric::Euclidean }])
                .unwrap();
        let err = miner().mine(&r, &p).unwrap_err();
        assert_eq!(err, dar_core::CoreError::UnknownAttribute(5));

        // Wrong-arity threshold vectors are rejected up front.
        let p = Partitioning::per_attribute(r.schema(), Metric::Euclidean);
        let mut config = miner().config().clone();
        config.initial_thresholds = Some(vec![1.0]); // needs 3
        assert!(DarMiner::new(config).mine(&r, &p).is_err());
        let mut config = miner().config().clone();
        config.query.density = DensitySpec::Explicit(vec![1.0, 1.0]); // needs 3
        assert!(DarMiner::new(config).mine(&r, &p).is_err());
    }
}
