//! The re-tunable half of Phase II, split out of the one-shot pipeline
//! configuration.
//!
//! Theorem 6.1 means everything after the data scan is a function of the
//! ACF summaries alone, and Section 6.2 observes that the interesting knobs
//! — density leniency, the degree-of-association threshold `D0`, rule arity
//! — are exactly the ones an analyst wants to sweep *without* re-scanning.
//! This module makes that split explicit:
//!
//! * [`RuleQuery`] holds the re-tunable parameters of one rule-mining
//!   request (what used to be loose fields on `DarConfig`);
//! * [`Phase2Artifacts`] is the expensive intermediate — clustering graph +
//!   maximal cliques at one density setting — that a long-lived engine can
//!   cache and answer many [`RuleQuery`]s from (see the `dar-engine`
//!   crate).

use crate::clique::non_trivial;
use crate::graph::{ClusterDistance, ClusteringGraph, GraphConfig};
use crate::pipeline::auto_density_thresholds;
use crate::rules::{generate_dars_capped_pooled, Dar, RuleConfig};
use dar_core::{ClusterSummary, CoreError};

/// How Phase II derives its per-set density thresholds `d0^X` (Dfn 4.2).
#[derive(Debug, Clone, PartialEq)]
pub enum DensitySpec {
    /// Auto-derive from the Phase I output, scaled by a leniency factor
    /// ("using a more lenient (higher) threshold in Phase II produces a
    /// better set of rules", Section 6.2).
    Auto {
        /// Multiplier on the per-set Phase I base scale.
        factor: f64,
    },
    /// Explicit per-set thresholds.
    Explicit(Vec<f64>),
}

impl Default for DensitySpec {
    fn default() -> Self {
        DensitySpec::Auto { factor: 1.5 }
    }
}

impl DensitySpec {
    /// Resolves to concrete per-set thresholds given the Phase I output.
    ///
    /// # Errors
    /// Explicit thresholds with the wrong arity are rejected.
    pub fn resolve(
        &self,
        clusters: &[ClusterSummary],
        tree_thresholds: &[f64],
        num_sets: usize,
    ) -> Result<Vec<f64>, CoreError> {
        match self {
            DensitySpec::Auto { factor } => {
                Ok(auto_density_thresholds(clusters, tree_thresholds, num_sets, *factor))
            }
            DensitySpec::Explicit(thresholds) => {
                if thresholds.len() != num_sets {
                    return Err(CoreError::InvalidPartitioning(format!(
                        "explicit density thresholds have {} entries but the partitioning has \
                         {num_sets} sets",
                        thresholds.len()
                    )));
                }
                Ok(thresholds.clone())
            }
        }
    }
}

/// The interestingness measure a query ranks its rules by.
///
/// `Degree` is the paper's own degree of association (Section 5) and the
/// default: ranking by it reproduces the engine's historical output order
/// exactly (ascending degree, then rule identity). The classical measures
/// are evaluated by the `dar-rank` crate from per-rule support statistics;
/// this enum is plain data so it can travel on a [`RuleQuery`] without
/// `mining` depending on the ranking layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Measure {
    /// The paper's normalized degree of association (lower degree is
    /// stronger; ranked ascending).
    #[default]
    Degree,
    /// Lift: `P(X ∧ Y) / (P(X)·P(Y))`.
    Lift,
    /// Conviction: `(1 − P(Y)) / (1 − conf(X ⇒ Y))`, capped at a finite
    /// constant so it survives JSON encoding.
    Conviction,
    /// Leverage (Piatetsky-Shapiro): `P(X ∧ Y) − P(X)·P(Y)`.
    Leverage,
    /// Jaccard: `P(X ∧ Y) / P(X ∨ Y)`.
    Jaccard,
}

/// Every measure, in wire-name order (useful for CLI help and sweeps).
pub const MEASURES: &[Measure] =
    &[Measure::Degree, Measure::Lift, Measure::Conviction, Measure::Leverage, Measure::Jaccard];

impl Measure {
    /// The wire/CLI name.
    pub fn as_str(self) -> &'static str {
        match self {
            Measure::Degree => "degree",
            Measure::Lift => "lift",
            Measure::Conviction => "conviction",
            Measure::Leverage => "leverage",
            Measure::Jaccard => "jaccard",
        }
    }

    /// Parses a wire/CLI name.
    pub fn parse(name: &str) -> Option<Measure> {
        MEASURES.iter().copied().find(|m| m.as_str() == name)
    }

    /// A stable small integer for cache keys.
    pub fn discriminant(self) -> u64 {
        match self {
            Measure::Degree => 0,
            Measure::Lift => 1,
            Measure::Conviction => 2,
            Measure::Leverage => 3,
            Measure::Jaccard => 4,
        }
    }
}

impl std::fmt::Display for Measure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One rule-mining request: the parameters an analyst re-tunes between
/// queries over the same clustered data.
#[derive(Debug, Clone, PartialEq)]
pub struct RuleQuery {
    /// Density thresholds for the clustering graph.
    pub density: DensitySpec,
    /// Degree-of-association leniency: `D0` per set is this factor times
    /// the set's density threshold.
    pub degree_factor: f64,
    /// Maximum antecedent arity.
    pub max_antecedent: usize,
    /// Maximum consequent arity.
    pub max_consequent: usize,
    /// Rule-count cap (0 = unbounded).
    pub max_rules: usize,
    /// Budget on clique-pair work during rule generation (0 = unbounded).
    pub max_pair_work: u64,
    /// The interestingness measure rules are ranked by.
    pub measure: Measure,
    /// Drop rules whose measure value falls below this floor.
    pub min_measure: Option<f64>,
    /// Keep only the best `top_k` ranked rules (0 = all).
    pub top_k: usize,
    /// Collapse near-identical rules (same attribute sets, overlapping
    /// cluster bounding boxes) to one representative per cluster.
    pub prune_redundant: bool,
    /// Anytime mode: sample clique pairs under this wall-clock budget in
    /// milliseconds and report an honest coverage fraction (0 = exact).
    pub budget_ms: u64,
}

impl Default for RuleQuery {
    fn default() -> Self {
        RuleQuery {
            density: DensitySpec::default(),
            degree_factor: 2.0,
            max_antecedent: 3,
            max_consequent: 2,
            max_rules: 100_000,
            max_pair_work: 10_000_000,
            measure: Measure::Degree,
            min_measure: None,
            top_k: 0,
            prune_redundant: false,
            budget_ms: 0,
        }
    }
}

impl RuleQuery {
    /// The per-set `D0` thresholds implied by this query at the given
    /// density thresholds.
    pub fn degree_thresholds(&self, density: &[f64]) -> Vec<f64> {
        density.iter().map(|d| d * self.degree_factor).collect()
    }

    /// The [`RuleConfig`] this query induces.
    pub fn rule_config(&self, metric: ClusterDistance, density: &[f64]) -> RuleConfig {
        RuleConfig {
            metric,
            degree_thresholds: self.degree_thresholds(density),
            max_antecedent: self.max_antecedent,
            max_consequent: self.max_consequent,
            max_rules: self.max_rules,
            max_pair_work: self.max_pair_work,
        }
    }
}

/// The cacheable intermediate of Phase II: the clustering graph over the
/// frequent clusters and its maximal cliques, at one density setting.
///
/// Building this is the expensive part of Phase II (all-pairs distances +
/// Bron–Kerbosch); mining rules from it with different `D0`/arity settings
/// is cheap. A long-lived engine memoizes one of these per density setting
/// per epoch.
#[derive(Debug, Clone)]
pub struct Phase2Artifacts {
    /// The density thresholds the graph was built at.
    pub density_thresholds: Vec<f64>,
    /// The clustering graph over the frequent clusters.
    pub graph: ClusteringGraph,
    /// Maximal cliques (indices into `graph.clusters()`).
    pub cliques: Vec<Vec<usize>>,
    /// Whether clique enumeration hit its cap.
    pub cliques_truncated: bool,
}

impl Phase2Artifacts {
    /// Builds the graph and enumerates its maximal cliques on the calling
    /// thread.
    pub fn build(
        frequent: Vec<ClusterSummary>,
        density_thresholds: Vec<f64>,
        metric: ClusterDistance,
        prune_poor_density: bool,
        max_cliques: usize,
    ) -> Self {
        Self::build_pooled(
            frequent,
            density_thresholds,
            metric,
            prune_poor_density,
            max_cliques,
            &dar_par::ThreadPool::serial(),
        )
    }

    /// [`Phase2Artifacts::build`] with the graph's all-pairs distances and
    /// the per-component clique enumeration spread across `pool`. Both
    /// stages use deterministic ordered reductions, so the artifacts are
    /// byte-identical to the serial build at every worker count — which is
    /// what lets an engine cache built at one thread setting answer queries
    /// interchangeably with any other.
    pub fn build_pooled(
        frequent: Vec<ClusterSummary>,
        density_thresholds: Vec<f64>,
        metric: ClusterDistance,
        prune_poor_density: bool,
        max_cliques: usize,
        pool: &dar_par::ThreadPool,
    ) -> Self {
        let m = crate::metrics::metrics();
        let _t = dar_obs::Span::new(m.phase2_build_ns.clone());
        let graph = ClusteringGraph::build_pooled(
            frequent,
            &GraphConfig {
                metric,
                density_thresholds: density_thresholds.clone(),
                prune_poor_density,
            },
            pool,
        );
        let (cliques, cliques_truncated) =
            crate::clique::maximal_cliques_pooled(graph.adjacency(), max_cliques, pool);
        m.graph_builds.inc();
        m.graph_edges.add(graph.edges as u64);
        m.comparisons.add(graph.comparisons);
        m.pruned_images.add(graph.pruned_images as u64);
        m.cliques.add(cliques.len() as u64);
        if cliques_truncated {
            m.cliques_truncated.inc();
        }
        Phase2Artifacts { density_thresholds, graph, cliques, cliques_truncated }
    }

    /// Number of cliques of size ≥ 2.
    pub fn nontrivial_cliques(&self) -> usize {
        non_trivial(&self.cliques)
    }

    /// Mines the rules a query asks for from the cached graph and cliques —
    /// no distance recomputation beyond the `assoc`-set checks of Dfn 5.1.
    ///
    /// Returns the rules and whether generation hit a budget.
    pub fn mine(&self, metric: ClusterDistance, query: &RuleQuery) -> (Vec<Dar>, bool) {
        self.mine_pooled(metric, query, &dar_par::ThreadPool::serial())
    }

    /// [`Phase2Artifacts::mine`] with rule generation parallelized over
    /// consequent cliques on `pool`. Byte-identical to the serial path at
    /// every worker count (see
    /// [`generate_dars_capped_pooled`](crate::rules::generate_dars_capped_pooled)).
    pub fn mine_pooled(
        &self,
        metric: ClusterDistance,
        query: &RuleQuery,
        pool: &dar_par::ThreadPool,
    ) -> (Vec<Dar>, bool) {
        let m = crate::metrics::metrics();
        let _t = dar_obs::Span::new(m.rule_gen_ns.clone());
        let (rules, truncated) = generate_dars_capped_pooled(
            &self.graph,
            &self.cliques,
            &query.rule_config(metric, &self.density_thresholds),
            pool,
        );
        m.rules_emitted.add(rules.len() as u64);
        if truncated {
            m.rules_truncated.inc();
        }
        (rules, truncated)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dar_core::{Acf, AcfLayout, ClusterId};

    fn cluster(id: u32, set: usize, x: f64, y: f64, n: usize) -> ClusterSummary {
        let layout = AcfLayout::new(vec![1, 1]);
        let mut acf = Acf::empty(&layout, set);
        for k in 0..n {
            let jitter = 0.05 * (k as f64 / n.max(1) as f64 - 0.5);
            acf.add_row(&[vec![x + jitter], vec![y + jitter]]);
        }
        ClusterSummary { id: ClusterId(id), set, acf }
    }

    fn two_block_clusters() -> Vec<ClusterSummary> {
        vec![
            cluster(0, 0, 0.0, 5.0, 10),
            cluster(1, 1, 0.0, 5.0, 10),
            cluster(2, 0, 50.0, 9.0, 10),
            cluster(3, 1, 50.0, 9.0, 10),
        ]
    }

    #[test]
    fn explicit_density_resolves_and_validates() {
        let spec = DensitySpec::Explicit(vec![1.0, 2.0]);
        assert_eq!(spec.resolve(&[], &[], 2).unwrap(), vec![1.0, 2.0]);
        assert!(spec.resolve(&[], &[], 3).is_err());
    }

    #[test]
    fn auto_density_matches_pipeline_helper() {
        let clusters = two_block_clusters();
        let spec = DensitySpec::Auto { factor: 1.5 };
        let resolved = spec.resolve(&clusters, &[1.0, 1.0], 2).unwrap();
        assert_eq!(resolved, auto_density_thresholds(&clusters, &[1.0, 1.0], 2, 1.5));
    }

    #[test]
    fn artifacts_mine_same_rules_for_same_query() {
        let artifacts = Phase2Artifacts::build(
            two_block_clusters(),
            vec![1.0, 1.0],
            ClusterDistance::D2,
            true,
            0,
        );
        assert_eq!(artifacts.graph.edges, 2, "one edge per block");
        assert_eq!(artifacts.nontrivial_cliques(), 2);
        let query = RuleQuery { degree_factor: 2.0, ..RuleQuery::default() };
        let (rules_a, truncated) = artifacts.mine(ClusterDistance::D2, &query);
        assert!(!truncated);
        assert!(!rules_a.is_empty());
        let (rules_b, _) = artifacts.mine(ClusterDistance::D2, &query);
        assert_eq!(rules_a, rules_b, "mining from cached artifacts is pure");
    }

    #[test]
    fn degree_thresholds_scale_density() {
        let query = RuleQuery { degree_factor: 3.0, ..RuleQuery::default() };
        assert_eq!(query.degree_thresholds(&[1.0, 2.0]), vec![3.0, 6.0]);
        let rc = query.rule_config(ClusterDistance::D1, &[1.0, 2.0]);
        assert_eq!(rc.metric, ClusterDistance::D1);
        assert_eq!(rc.degree_thresholds, vec![3.0, 6.0]);
    }
}
