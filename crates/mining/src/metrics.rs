//! Global observability handles for Phase II (`dar_mining_*`).
//!
//! Handles are cached in a `OnceLock`; the whole family registers eagerly
//! on first use so every `dar_mining_*` series is visible in exposition
//! (at zero) before the first query. Recording is relaxed atomics only.

use dar_obs::{global, Counter, Histogram};
use std::sync::OnceLock;

/// The Phase II metric family.
pub(crate) struct MiningMetrics {
    /// `dar_mining_graph_builds_total`: clustering graphs built.
    pub graph_builds: Counter,
    /// `dar_mining_graph_edges_total`: edges across all built graphs.
    pub graph_edges: Counter,
    /// `dar_mining_graph_comparisons_total`: cluster-pair distance
    /// comparisons performed.
    pub comparisons: Counter,
    /// `dar_mining_pruned_images_total`: poor-density images pruned
    /// during graph builds (Section 6.2 leniency knob at work).
    pub pruned_images: Counter,
    /// `dar_mining_cliques_total`: maximal cliques enumerated.
    pub cliques: Counter,
    /// `dar_mining_cliques_truncated_total`: builds whose clique
    /// enumeration hit its cap.
    pub cliques_truncated: Counter,
    /// `dar_mining_rules_emitted_total`: DARs returned to callers.
    pub rules_emitted: Counter,
    /// `dar_mining_rules_truncated_total`: queries whose rule generation
    /// hit a budget.
    pub rules_truncated: Counter,
    /// `dar_mining_phase2_build_ns`: wall-clock per `Phase2Artifacts`
    /// build (graph + cliques).
    pub phase2_build_ns: Histogram,
    /// `dar_mining_rule_gen_ns`: wall-clock per rule-generation pass.
    pub rule_gen_ns: Histogram,
}

/// The cached handles.
pub(crate) fn metrics() -> &'static MiningMetrics {
    static METRICS: OnceLock<MiningMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = global();
        MiningMetrics {
            graph_builds: r.counter("dar_mining_graph_builds_total"),
            graph_edges: r.counter("dar_mining_graph_edges_total"),
            comparisons: r.counter("dar_mining_graph_comparisons_total"),
            pruned_images: r.counter("dar_mining_pruned_images_total"),
            cliques: r.counter("dar_mining_cliques_total"),
            cliques_truncated: r.counter("dar_mining_cliques_truncated_total"),
            rules_emitted: r.counter("dar_mining_rules_emitted_total"),
            rules_truncated: r.counter("dar_mining_rules_truncated_total"),
            phase2_build_ns: r.histogram("dar_mining_phase2_build_ns"),
            rule_gen_ns: r.histogram("dar_mining_rule_gen_ns"),
        }
    })
}
