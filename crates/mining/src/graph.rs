//! The clustering graph (Definition 6.1).
//!
//! Nodes are the frequent clusters of Phase I. An edge joins clusters
//! `C_X` (on set `X`) and `C_Y` (on set `Y ≠ X`) iff the two are mutually
//! close on **both** projections:
//!
//! ```text
//! D(C_X[X], C_Y[X]) ≤ d0_X   and   D(C_X[Y], C_Y[Y]) ≤ d0_Y
//! ```
//!
//! Every distance is computed from ACF summaries alone (Theorem 6.1). The
//! optional pruning pass implements Section 6.2's cost reduction: under the
//! RMS D2, `D2² = r_a² + r_b² + ‖c_a − c_b‖²`, so a cluster whose *image*
//! radius on some set exceeds that set's threshold can never satisfy the
//! edge condition there — the node's comparisons on that set are skipped
//! without evaluating any pair.

use dar_core::{Acf, ClusterSummary, CoreError, SetId};

/// Which summary-computable inter-cluster distance `D` to use (Section 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClusterDistance {
    /// Centroid Euclidean distance.
    D0,
    /// Centroid Manhattan distance (paper Eq. 5).
    D1,
    /// RMS average inter-cluster distance (paper Eq. 6 in moment form).
    #[default]
    D2,
}

impl ClusterDistance {
    /// Distance between the images of two clusters on `set`.
    pub fn between(self, a: &Acf, b: &Acf, set: SetId) -> Result<f64, CoreError> {
        match self {
            ClusterDistance::D0 => a.d0_on(set, b),
            ClusterDistance::D1 => a.d1_on(set, b),
            ClusterDistance::D2 => a.d2_on(set, b),
        }
    }
}

/// Configuration of the clustering-graph construction.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphConfig {
    /// The inter-cluster distance `D`.
    pub metric: ClusterDistance,
    /// Per-set density thresholds `d0^X` (Phase II may use more lenient
    /// values than Phase I; Section 6.2).
    pub density_thresholds: Vec<f64>,
    /// Enable the poor-density image pruning heuristic. Only exact for
    /// [`ClusterDistance::D2`]; ignored otherwise.
    pub prune_poor_density: bool,
}

/// The clustering graph over a set of clusters, with instrumentation for
/// the pruning ablation.
#[derive(Debug, Clone)]
pub struct ClusteringGraph {
    clusters: Vec<ClusterSummary>,
    /// Bitset adjacency rows, `⌈n/64⌉` words each.
    adj: Vec<Vec<u64>>,
    /// Pairs whose distances were actually evaluated.
    pub comparisons: u64,
    /// Undirected edge count.
    pub edges: usize,
    /// Node–set combinations skipped by the pruning heuristic.
    pub pruned_images: usize,
}

impl ClusteringGraph {
    /// Builds the graph over `clusters` (typically the frequent clusters of
    /// Phase I) on the calling thread.
    ///
    /// # Panics
    /// Panics if a cluster references a set with no density threshold.
    pub fn build(clusters: Vec<ClusterSummary>, config: &GraphConfig) -> Self {
        Self::build_pooled(clusters, config, &dar_par::ThreadPool::serial())
    }

    /// Builds the graph with the O(k²) distance computation partitioned by
    /// matrix row across `pool`. Every inter-cluster distance is a pure
    /// function of the two ACF summaries (Theorem 6.1), so row tasks share
    /// nothing; the per-row results are folded in ascending row order — a
    /// deterministic ordered reduction — making the adjacency, edge count,
    /// and comparison count bit-identical to [`ClusteringGraph::build`] at
    /// every worker count.
    ///
    /// # Panics
    /// Panics if a cluster references a set with no density threshold.
    pub fn build_pooled(
        clusters: Vec<ClusterSummary>,
        config: &GraphConfig,
        pool: &dar_par::ThreadPool,
    ) -> Self {
        /// Rows are claimed in chunks this size; small enough that the
        /// shrinking upper-triangle rows still balance across workers.
        const ROW_CHUNK: usize = 8;
        /// Below this node count the fan-out costs more than the matrix.
        const PARALLEL_MIN_NODES: usize = 96;

        let n = clusters.len();
        let words = n.div_ceil(64);
        let mut comparisons = 0u64;
        let mut edges = 0usize;
        let mut pruned_images = 0usize;

        // Pruning pass: image_ok[i][s] ⇔ cluster i's image on set s could
        // still satisfy D2 ≤ d0_s (its image radius does not already exceed
        // the threshold).
        let num_sets = config.density_thresholds.len();
        let use_prune = config.prune_poor_density && config.metric == ClusterDistance::D2;
        let image_ok: Vec<Vec<bool>> = clusters
            .iter()
            .map(|c| {
                (0..num_sets)
                    .map(|s| {
                        if !use_prune {
                            return true;
                        }
                        let ok = c.acf.image(s).radius() <= config.density_thresholds[s];
                        if !ok {
                            pruned_images += 1;
                        }
                        ok
                    })
                    .collect()
            })
            .collect();

        // One task per matrix row `i`: the distances to every `j > i`, as
        // (upper-triangle bit words, comparison count, adjacent js). Pure
        // reads of `clusters`/`image_ok`; no shared writes.
        let scan_row = |i: usize| -> (Vec<u64>, u64, Vec<usize>) {
            let mut row_words = vec![0u64; words];
            let mut row_comparisons = 0u64;
            let mut neighbors = Vec::new();
            let a = &clusters[i];
            for j in (i + 1)..n {
                let b = &clusters[j];
                if a.set == b.set {
                    continue; // rules need pairwise disjoint attribute sets
                }
                let (x, y) = (a.set, b.set);
                // Edge needs: D on X ≤ d0_X (uses b's image on X) and
                // D on Y ≤ d0_Y (uses a's image on Y).
                if !(image_ok[j][x] && image_ok[i][y]) {
                    continue;
                }
                row_comparisons += 1;
                let dx = config
                    .metric
                    .between(&a.acf, &b.acf, x)
                    .expect("frequent clusters are non-empty");
                if dx > config.density_thresholds[x] {
                    continue;
                }
                let dy = config
                    .metric
                    .between(&a.acf, &b.acf, y)
                    .expect("frequent clusters are non-empty");
                if dy > config.density_thresholds[y] {
                    continue;
                }
                row_words[j / 64] |= 1 << (j % 64);
                neighbors.push(j);
            }
            (row_words, row_comparisons, neighbors)
        };
        let serial = dar_par::ThreadPool::serial();
        let pool = if n < PARALLEL_MIN_NODES { &serial } else { pool };
        let rows = pool.map_indexed("graph_rows", n, ROW_CHUNK, scan_row);

        // Ordered reduction: fold rows in ascending index order, OR-ing the
        // upper triangle in and mirroring each edge — byte-for-byte the
        // matrix the serial double loop writes.
        let mut adj = vec![vec![0u64; words]; n];
        for (i, (row_words, row_comparisons, neighbors)) in rows.into_iter().enumerate() {
            comparisons += row_comparisons;
            edges += neighbors.len();
            for (w, word) in row_words.into_iter().enumerate() {
                adj[i][w] |= word;
            }
            for j in neighbors {
                adj[j][i / 64] |= 1 << (i % 64);
            }
        }
        ClusteringGraph { clusters, adj, comparisons, edges, pruned_images }
    }

    /// The graph's nodes.
    pub fn clusters(&self) -> &[ClusterSummary] {
        &self.clusters
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }

    /// Whether nodes `i` and `j` are adjacent.
    pub fn adjacent(&self, i: usize, j: usize) -> bool {
        self.adj[i][j / 64] & (1 << (j % 64)) != 0
    }

    /// Degree of node `i`.
    pub fn degree(&self, i: usize) -> usize {
        self.adj[i].iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The raw bitset adjacency (for the clique finder).
    pub fn adjacency(&self) -> &[Vec<u64>] {
        &self.adj
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dar_core::{Acf, AcfLayout, ClusterId};

    /// Builds a 2-set cluster: `n_points` points at `(x, y)` with ±spread
    /// jitter on both sets.
    fn cluster(
        id: u32,
        set: SetId,
        x: f64,
        y: f64,
        n_points: usize,
        spread: f64,
    ) -> ClusterSummary {
        let layout = AcfLayout::new(vec![1, 1]);
        let mut acf = Acf::empty(&layout, set);
        for k in 0..n_points {
            let jitter = spread * (k as f64 / n_points.max(1) as f64 - 0.5);
            acf.add_row(&[vec![x + jitter], vec![y + jitter]]);
        }
        ClusterSummary { id: ClusterId(id), set, acf }
    }

    fn config(d0: f64) -> GraphConfig {
        GraphConfig {
            metric: ClusterDistance::D2,
            density_thresholds: vec![d0, d0],
            prune_poor_density: false,
        }
    }

    #[test]
    fn mutually_close_clusters_get_an_edge() {
        // c0 on set 0 at (0, 5); c1 on set 1 at (0, 5): same tuples, so
        // their images coincide → distance ~0 on both sets.
        let clusters = vec![cluster(0, 0, 0.0, 5.0, 10, 0.1), cluster(1, 1, 0.0, 5.0, 10, 0.1)];
        let g = ClusteringGraph::build(clusters, &config(1.0));
        assert!(g.adjacent(0, 1));
        assert!(g.adjacent(1, 0));
        assert_eq!(g.edges, 1);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.comparisons, 1);
    }

    #[test]
    fn distant_images_get_no_edge() {
        // Same x location, but the set-1 images are far apart.
        let clusters = vec![cluster(0, 0, 0.0, 5.0, 10, 0.1), cluster(1, 1, 0.0, 500.0, 10, 0.1)];
        let g = ClusteringGraph::build(clusters, &config(1.0));
        assert!(!g.adjacent(0, 1));
        assert_eq!(g.edges, 0);
    }

    #[test]
    fn same_set_clusters_never_join() {
        let clusters = vec![cluster(0, 0, 0.0, 5.0, 10, 0.1), cluster(1, 0, 0.0, 5.0, 10, 0.1)];
        let g = ClusteringGraph::build(clusters, &config(1e9));
        assert_eq!(g.edges, 0);
        assert_eq!(g.comparisons, 0);
    }

    #[test]
    fn pruning_skips_poor_density_images_without_changing_the_graph() {
        // c_bad has a huge image spread on set 1, so no edge can use it.
        let mut clusters = vec![cluster(0, 0, 0.0, 5.0, 10, 0.1), cluster(1, 1, 0.0, 5.0, 10, 0.1)];
        // A set-0 cluster whose set-1 image is scattered over ±500.
        let layout = AcfLayout::new(vec![1, 1]);
        let mut acf = Acf::empty(&layout, 0);
        for k in 0..10 {
            acf.add_row(&[vec![0.3], vec![-500.0 + 100.0 * k as f64]]);
        }
        clusters.push(ClusterSummary { id: ClusterId(2), set: 0, acf });

        let mut cfg = config(1.0);
        let unpruned = ClusteringGraph::build(clusters.clone(), &cfg);
        cfg.prune_poor_density = true;
        let pruned = ClusteringGraph::build(clusters, &cfg);
        assert_eq!(unpruned.edges, pruned.edges, "pruning must be lossless");
        assert!(pruned.comparisons < unpruned.comparisons);
        assert!(pruned.pruned_images > 0);
        for i in 0..pruned.len() {
            for j in 0..pruned.len() {
                if i != j {
                    assert_eq!(unpruned.adjacent(i, j), pruned.adjacent(i, j));
                }
            }
        }
    }

    #[test]
    fn pooled_build_is_bit_identical_to_serial() {
        // Enough nodes to clear the parallel threshold, spread over two
        // sets with a mix of near and far placements so the graph has
        // structure (some edges, some non-edges, same-set skips).
        let clusters: Vec<ClusterSummary> = (0..150)
            .map(|i| {
                let set = i % 2;
                let x = (i % 5) as f64 * 0.3;
                let y = 5.0 + (i % 7) as f64 * 0.2;
                cluster(i as u32, set, x, y, 8, 0.1)
            })
            .collect();
        let mut cfg = config(1.0);
        cfg.prune_poor_density = true;
        let serial = ClusteringGraph::build(clusters.clone(), &cfg);
        for workers in [2usize, 4, 8] {
            let pool = dar_par::ThreadPool::new(workers);
            let pooled = ClusteringGraph::build_pooled(clusters.clone(), &cfg, &pool);
            assert_eq!(pooled.adjacency(), serial.adjacency(), "workers={workers}");
            assert_eq!(pooled.edges, serial.edges);
            assert_eq!(pooled.comparisons, serial.comparisons);
            assert_eq!(pooled.pruned_images, serial.pruned_images);
        }
    }

    #[test]
    fn d1_metric_uses_centroids() {
        let clusters = vec![cluster(0, 0, 0.0, 5.0, 4, 0.0), cluster(1, 1, 3.0, 5.0, 4, 0.0)];
        let cfg = GraphConfig {
            metric: ClusterDistance::D1,
            density_thresholds: vec![2.0, 2.0],
            prune_poor_density: false,
        };
        // Centroid distance on set 0 is 3 > 2 → no edge.
        let g = ClusteringGraph::build(clusters, &cfg);
        assert_eq!(g.edges, 0);
    }
}
