//! # mining
//!
//! The two-phase **distance-based association rule** (DAR) miner — the
//! primary contribution of Miller & Yang, *Association Rules over Interval
//! Data* (SIGMOD 1997), Sections 5 and 6.
//!
//! * **Phase I** (delegated to the [`birch`] crate, driven by
//!   [`pipeline::DarMiner`]): one scan of the data builds an adaptive
//!   ACF-tree per attribute set; the frequent leaf clusters become the
//!   "1-itemsets".
//! * **Phase II** (this crate, no data rescan): the **clustering graph**
//!   ([`graph`], Dfn 6.1) joins clusters of different attribute sets that
//!   are mutually close on both projections; **maximal cliques**
//!   ([`clique`], Bron–Kerbosch) are the large itemsets; and DARs of
//!   arbitrary arity are derived from clique pairs via the `assoc` sets of
//!   Section 6.2 ([`rules`]).
//!
//! The crate also implements:
//!
//! * the **degree of association** interest measure and its exact
//!   (tuple-level) counterpart, with the classical-rule correspondence of
//!   Theorems 5.1/5.2 ([`interest`]);
//! * **generalized quantitative association rules** (Dfn 4.4): clusters as
//!   items fed to classical Apriori via nearest-centroid assignment
//!   ([`gqar`], the Section 4.3 intermediate algorithm);
//! * human-readable rule rendering by bounding box ([`describe`],
//!   Section 7.2).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assign;
pub mod clique;
pub mod describe;
pub mod gqar;
pub mod graph;
pub mod interest;
mod metrics;
pub mod persist;
pub mod pipeline;
pub mod query;
pub mod rules;

pub use clique::{maximal_cliques, maximal_cliques_pooled, non_trivial};
pub use graph::{ClusterDistance, ClusteringGraph, GraphConfig};
pub use pipeline::{DarConfig, DarMiner, MineResult, MineStats};
pub use query::{DensitySpec, Measure, Phase2Artifacts, RuleQuery, MEASURES};
pub use rules::{
    consequent_subsets, generate_dars_capped_pooled, pair_candidates, sort_rules, Dar, RuleConfig,
};
