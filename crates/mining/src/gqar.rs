//! Generalized quantitative association rules (Definition 4.4, Section 4.3).
//!
//! The intermediate formulation between classical rules and DARs: Phase I
//! clusters become *items*, each tuple is assigned to the nearest cluster
//! per attribute set ([`crate::assign`]), and the classical Apriori engine
//! mines the resulting transactions with plain support/confidence. This is
//! "classical association rules over interval data" — it meets Goal 1 but
//! not Goals 2/3, which is exactly the gap DARs close (Section 5).

use crate::assign::CentroidIndex;
use classic::{apriori, generate_rules, AprioriConfig, ItemId, TransactionSet};
use dar_core::{ClusterSummary, Partitioning, Relation};

/// Configuration of the GQAR miner.
#[derive(Debug, Clone, PartialEq)]
pub struct GqarConfig {
    /// Absolute minimum support for cluster itemsets.
    pub min_support: u64,
    /// Minimum rule confidence.
    pub min_confidence: f64,
    /// Cap on itemset size (0 = unbounded).
    pub max_len: usize,
}

impl Default for GqarConfig {
    fn default() -> Self {
        GqarConfig { min_support: 2, min_confidence: 0.5, max_len: 4 }
    }
}

/// A generalized quantitative association rule: cluster indices (into the
/// caller's cluster slice) with classical support/confidence.
#[derive(Debug, Clone, PartialEq)]
pub struct GqarRule {
    /// Antecedent cluster positions.
    pub antecedent: Vec<usize>,
    /// Consequent cluster positions.
    pub consequent: Vec<usize>,
    /// Absolute support of the combined itemset.
    pub support: u64,
    /// Classical confidence.
    pub confidence: f64,
}

/// Mines GQARs: assigns every tuple to its nearest cluster per attribute
/// set, then runs Apriori + rule generation over the cluster items.
pub fn mine_gqar(
    relation: &Relation,
    partitioning: &Partitioning,
    clusters: &[ClusterSummary],
    config: &GqarConfig,
) -> Vec<GqarRule> {
    if relation.is_empty() || clusters.is_empty() {
        return Vec::new();
    }
    let indexes: Vec<CentroidIndex> = (0..partitioning.num_sets())
        .map(|set| CentroidIndex::new(clusters, set, partitioning.set(set).metric))
        .collect();

    let mut tx = TransactionSet::new();
    let mut buf = Vec::new();
    let mut items = Vec::new();
    for row in 0..relation.len() {
        items.clear();
        for (set, index) in indexes.iter().enumerate() {
            relation.project_into(row, &partitioning.set(set).attrs, &mut buf);
            if let Some((pos, _)) = index.nearest(&buf) {
                items.push(ItemId(pos as u32));
            }
        }
        tx.push(items.clone());
    }

    let freq =
        apriori(&tx, &AprioriConfig { min_support: config.min_support, max_len: config.max_len });
    generate_rules(&freq, config.min_confidence)
        .into_iter()
        .map(|r| GqarRule {
            antecedent: r.antecedent.iter().map(|i| i.0 as usize).collect(),
            consequent: r.consequent.iter().map(|i| i.0 as usize).collect(),
            support: r.support,
            confidence: r.confidence,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dar_core::{Acf, AcfLayout, ClusterId, Metric, RelationBuilder, Schema};

    /// Two correlated blocks on two attributes.
    fn blocks() -> Relation {
        let mut b = RelationBuilder::new(Schema::interval_attrs(2));
        for i in 0..30 {
            let j = (i % 5) as f64 * 0.01;
            b.push_row(&[j, 100.0 + j]).unwrap();
            b.push_row(&[50.0 + j, 200.0 + j]).unwrap();
        }
        b.finish()
    }

    fn clusters_for(values: &[(usize, f64)]) -> Vec<ClusterSummary> {
        // Build single-point clusters (centroids) per (set, center).
        let layout = AcfLayout::new(vec![1, 1]);
        values
            .iter()
            .enumerate()
            .map(|(i, &(set, v))| {
                let mut acf = Acf::empty(&layout, set);
                let mut p = vec![vec![0.0], vec![0.0]];
                p[set][0] = v;
                acf.add_row(&p);
                ClusterSummary { id: ClusterId(i as u32), set, acf }
            })
            .collect()
    }

    #[test]
    fn mines_cross_attribute_cluster_rules() {
        let r = blocks();
        let p = Partitioning::per_attribute(r.schema(), Metric::Euclidean);
        // Clusters: set 0 at 0 and 50; set 1 at 100 and 200.
        let clusters = clusters_for(&[(0, 0.0), (0, 50.0), (1, 100.0), (1, 200.0)]);
        let rules = mine_gqar(
            &r,
            &p,
            &clusters,
            &GqarConfig { min_support: 20, min_confidence: 0.9, max_len: 2 },
        );
        assert!(!rules.is_empty());
        // Cluster 0 (x≈0) implies cluster 2 (y≈100) with confidence 1.
        let found = rules
            .iter()
            .any(|r| r.antecedent == vec![0] && r.consequent == vec![2] && r.confidence > 0.99);
        assert!(found, "expected 0 ⇒ 2, got {rules:?}");
        // Supports are plausible: each block has 30 tuples.
        for rule in &rules {
            assert!(rule.support >= 20);
        }
    }

    #[test]
    fn empty_inputs() {
        let r = RelationBuilder::new(Schema::interval_attrs(1)).finish();
        let p = Partitioning::per_attribute(r.schema(), Metric::Euclidean);
        assert!(mine_gqar(&r, &p, &[], &GqarConfig::default()).is_empty());
    }
}
