//! Interest measures: the degree of association and its relationship to
//! classical support/confidence (Section 5, Theorems 5.1 and 5.2).

use dar_core::exact::PointSet;
use dar_core::{AttrId, CoreError, Interval, Metric, Relation};

/// A simple tuple predicate for classical support/confidence accounting on
/// relations (used to reproduce Figure 2's numbers).
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// `attr = value`.
    Eq(AttrId, f64),
    /// `lo ≤ attr ≤ hi`.
    In(AttrId, Interval),
}

impl Predicate {
    /// Whether tuple `row` of `relation` satisfies the predicate.
    pub fn matches(&self, relation: &Relation, row: usize) -> bool {
        match self {
            Predicate::Eq(a, v) => relation.value(row, *a) == *v,
            Predicate::In(a, iv) => iv.contains(relation.value(row, *a)),
        }
    }
}

/// Tuples satisfying every predicate (the extension `|C1 ∧ C2|`).
pub fn satisfying_rows(relation: &Relation, predicates: &[Predicate]) -> Vec<usize> {
    (0..relation.len()).filter(|&row| predicates.iter().all(|p| p.matches(relation, row))).collect()
}

/// Classical support: `|C1 ∧ C2| / |r|`.
pub fn support(relation: &Relation, antecedent: &[Predicate], consequent: &[Predicate]) -> f64 {
    if relation.is_empty() {
        return 0.0;
    }
    let both: Vec<Predicate> = antecedent.iter().chain(consequent).cloned().collect();
    satisfying_rows(relation, &both).len() as f64 / relation.len() as f64
}

/// Classical confidence: `|C1 ∧ C2| / |C1|`; `None` when the antecedent is
/// never satisfied.
pub fn confidence(
    relation: &Relation,
    antecedent: &[Predicate],
    consequent: &[Predicate],
) -> Option<f64> {
    let ant = satisfying_rows(relation, antecedent).len();
    if ant == 0 {
        return None;
    }
    let both: Vec<Predicate> = antecedent.iter().chain(consequent).cloned().collect();
    Some(satisfying_rows(relation, &both).len() as f64 / ant as f64)
}

/// The **degree of association** of the 1:1 DAR `C_X ⇒ C_Y` in its exact
/// tuple-level form (Dfn 5.1 with the exact D2 of Eq. 6): the average
/// distance, under `metric`, from the Y-projections of `C_X`'s tuples to the
/// Y-projections of `C_Y`'s tuples. Lower is stronger.
pub fn degree_exact(
    relation: &Relation,
    cx_rows: &[usize],
    cy_rows: &[usize],
    y_attrs: &[AttrId],
    metric: Metric,
) -> Result<f64, CoreError> {
    let cx_on_y = PointSet::new(cx_rows.iter().map(|&r| relation.project(r, y_attrs)).collect())?;
    let cy = PointSet::new(cy_rows.iter().map(|&r| relation.project(r, y_attrs)).collect())?;
    cy.d2(&cx_on_y, metric)
}

/// Theorem 5.2 (forward direction), computable: for nominal clusters
/// `C_A = σ_{A=a}(r)` and `C_B = σ_{B=b}(r)` under the discrete metric,
/// `D2(C_B[B], C_A[B]) = 1 − confidence(A=a ⇒ B=b)`.
///
/// Returns `(degree, confidence)` so callers can check the identity.
pub fn theorem_5_2_pair(
    relation: &Relation,
    a: AttrId,
    a_val: f64,
    b: AttrId,
    b_val: f64,
) -> Result<(f64, f64), CoreError> {
    let ca = satisfying_rows(relation, &[Predicate::Eq(a, a_val)]);
    let cb = satisfying_rows(relation, &[Predicate::Eq(b, b_val)]);
    if ca.is_empty() || cb.is_empty() {
        return Err(CoreError::EmptyCluster);
    }
    let degree = degree_exact(relation, &ca, &cb, &[b], Metric::Discrete)?;
    let conf = confidence(relation, &[Predicate::Eq(a, a_val)], &[Predicate::Eq(b, b_val)])
        .expect("C_A is non-empty");
    Ok((degree, conf))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dar_core::{RelationBuilder, Schema};

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    /// A small nominal relation: A ∈ {0,1}, B ∈ {10,20}.
    fn nominal() -> Relation {
        let mut b = RelationBuilder::new(Schema::interval_attrs(2));
        // A=0 → B=10 three times, B=20 once; A=1 → B=20 twice.
        for row in [[0.0, 10.0], [0.0, 10.0], [0.0, 10.0], [0.0, 20.0], [1.0, 20.0], [1.0, 20.0]] {
            b.push_row(&row).unwrap();
        }
        b.finish()
    }

    #[test]
    fn support_and_confidence_basics() {
        let r = nominal();
        let ant = [Predicate::Eq(0, 0.0)];
        let cons = [Predicate::Eq(1, 10.0)];
        assert!(close(support(&r, &ant, &cons), 3.0 / 6.0));
        assert!(close(confidence(&r, &ant, &cons).unwrap(), 3.0 / 4.0));
        // Unsatisfiable antecedent → None.
        assert_eq!(confidence(&r, &[Predicate::Eq(0, 99.0)], &cons), None);
        // Interval predicate.
        let iv = [Predicate::In(1, Interval::new(15.0, 25.0))];
        assert!(close(support(&r, &[], &iv), 3.0 / 6.0));
    }

    #[test]
    fn theorem_5_2_identity_holds() {
        let r = nominal();
        // A=0 ⇒ B=10: confidence 3/4, so degree must be 1/4.
        let (degree, conf) = theorem_5_2_pair(&r, 0, 0.0, 1, 10.0).unwrap();
        assert!(close(conf, 0.75));
        assert!(close(degree, 1.0 - conf), "degree {degree} vs 1-conf {}", 1.0 - conf);
        // A=1 ⇒ B=20: confidence 1, degree 0.
        let (degree, conf) = theorem_5_2_pair(&r, 0, 1.0, 1, 20.0).unwrap();
        assert!(close(conf, 1.0));
        assert!(close(degree, 0.0));
    }

    #[test]
    fn theorem_5_2_empty_cluster_is_an_error() {
        let r = nominal();
        assert!(theorem_5_2_pair(&r, 0, 42.0, 1, 10.0).is_err());
    }

    #[test]
    fn degree_exact_figure2_r2_beats_r1() {
        // The motivating example: Rule (1) should score better (lower
        // degree) in R2 than in R1 because 41K/42K are near 40K.
        let r1 = datagen_r(true);
        let r2 = datagen_r(false);
        let deg = |r: &Relation| {
            // C_X = 30-year-old DBAs; C_Y = the 40K salary cluster.
            let cx = satisfying_rows(r, &[Predicate::Eq(0, 1.0), Predicate::Eq(1, 30.0)]);
            let cy = satisfying_rows(r, &[Predicate::Eq(2, 40_000.0)]);
            degree_exact(r, &cx, &cy, &[2], Metric::Euclidean).unwrap()
        };
        assert!(deg(&r2) < deg(&r1), "R2 degree {} !< R1 degree {}", deg(&r2), deg(&r1));
    }

    /// Local copies of Figure 2's R1/R2 (datagen depends on dar-core, not on
    /// this crate, so tests rebuild the six rows directly).
    fn datagen_r(r1: bool) -> Relation {
        let mut b = RelationBuilder::new(Schema::interval_attrs(3));
        let tail: [[f64; 3]; 2] = if r1 {
            [[1.0, 30.0, 100_000.0], [1.0, 30.0, 90_000.0]]
        } else {
            [[1.0, 30.0, 41_000.0], [1.0, 30.0, 42_000.0]]
        };
        for row in [
            [0.0, 30.0, 40_000.0],
            [1.0, 30.0, 40_000.0],
            [1.0, 30.0, 40_000.0],
            [1.0, 30.0, 40_000.0],
            tail[0],
            tail[1],
        ] {
            b.push_row(&row).unwrap();
        }
        b.finish()
    }
}
