//! Point-to-cluster assignment by nearest centroid.
//!
//! Birch discovers summaries rather than tuple sets, so to use clusters as
//! items (Dfn 4.4) or to recount candidate-rule frequencies, each tuple must
//! be mapped to a cluster: "we can find the centroid closest to the point
//! ... and define the tuple to be in the cluster represented by this
//! centroid" (Section 4.3.2).

use dar_core::{ClusterSummary, Metric, SetId};

/// A nearest-centroid index over the clusters of one attribute set.
#[derive(Debug, Clone)]
pub struct CentroidIndex {
    set: SetId,
    metric: Metric,
    /// `(cluster position in the caller's slice, centroid)`.
    centroids: Vec<(usize, Vec<f64>)>,
}

impl CentroidIndex {
    /// Builds an index over the clusters of attribute set `set` found in
    /// `clusters` (clusters of other sets are skipped). `positions` refer to
    /// indices into the given slice.
    pub fn new(clusters: &[ClusterSummary], set: SetId, metric: Metric) -> Self {
        let centroids = clusters
            .iter()
            .enumerate()
            .filter(|(_, c)| c.set == set && !c.acf.is_empty())
            .map(|(i, c)| (i, c.acf.centroid_on(set).expect("non-empty cluster")))
            .collect();
        CentroidIndex { set, metric, centroids }
    }

    /// The attribute set this index covers.
    pub fn set(&self) -> SetId {
        self.set
    }

    /// Number of indexed clusters.
    pub fn len(&self) -> usize {
        self.centroids.len()
    }

    /// Whether the index holds no clusters.
    pub fn is_empty(&self) -> bool {
        self.centroids.is_empty()
    }

    /// The position (into the original slice) of the cluster whose centroid
    /// is nearest to `point`, with the distance. `None` when empty.
    pub fn nearest(&self, point: &[f64]) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64)> = None;
        for (pos, c) in &self.centroids {
            let d = self.metric.distance(c, point);
            if best.is_none_or(|(_, bd)| d < bd) {
                best = Some((*pos, d));
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dar_core::{Acf, AcfLayout, ClusterId};

    fn cluster(id: u32, set: SetId, value: f64) -> ClusterSummary {
        let layout = AcfLayout::new(vec![1, 1]);
        let mut acf = Acf::empty(&layout, set);
        let mut projections = vec![vec![0.0], vec![0.0]];
        projections[set][0] = value;
        acf.add_row(&projections);
        ClusterSummary { id: ClusterId(id), set, acf }
    }

    #[test]
    fn nearest_picks_the_closest_centroid_of_the_right_set() {
        let clusters = vec![
            cluster(0, 0, 0.0),
            cluster(1, 0, 10.0),
            cluster(2, 1, 4.9), // different set: must be ignored
        ];
        let idx = CentroidIndex::new(&clusters, 0, Metric::Euclidean);
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.set(), 0);
        let (pos, d) = idx.nearest(&[4.0]).unwrap();
        assert_eq!(pos, 0);
        assert!((d - 4.0).abs() < 1e-12);
        let (pos, _) = idx.nearest(&[7.0]).unwrap();
        assert_eq!(pos, 1);
    }

    #[test]
    fn empty_index() {
        let idx = CentroidIndex::new(&[], 0, Metric::Euclidean);
        assert!(idx.is_empty());
        assert_eq!(idx.nearest(&[1.0]), None);
    }
}
