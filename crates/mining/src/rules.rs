//! DAR generation from cliques (Section 6.2, Definitions 5.1–5.3).
//!
//! For a pair of cliques `Q1`, `Q2`, each consequent cluster `C_Yj ∈ Q2`
//! gets an association set
//! `assoc(C_Yj) = { C_Xi ∈ Q1 : D(C_Yj[Yj], C_Xi[Yj]) ≤ D0_Yj }`; every
//! non-empty `C_X' ⊆ ∩_j assoc(C_Yj)` with attribute sets disjoint from the
//! consequent's yields the DAR `C_X' ⇒ C_Y'`. Clique membership supplies
//! the mutual-closeness conditions among antecedent clusters and among
//! consequent clusters (the 2nd and 3rd conditions of Dfn 5.3), since all
//! clique members are pairwise adjacent in the clustering graph.

use crate::graph::{ClusterDistance, ClusteringGraph};
use dar_par::ThreadPool;
use std::collections::BTreeSet;

/// Configuration of rule generation.
#[derive(Debug, Clone, PartialEq)]
pub struct RuleConfig {
    /// The inter-cluster distance `D` (should match the graph's).
    pub metric: ClusterDistance,
    /// Per-set degree-of-association thresholds `D0` — the strength the
    /// consequent's projections must be matched with (Dfn 5.1), on the
    /// consequent set's own scale.
    pub degree_thresholds: Vec<f64>,
    /// Maximum clusters in an antecedent.
    pub max_antecedent: usize,
    /// Maximum clusters in a consequent.
    pub max_consequent: usize,
    /// Stop after this many distinct rules (0 = unbounded).
    pub max_rules: usize,
    /// Hard budget on clique-pair × consequent-subset combinations
    /// examined (0 = unbounded). "This process is repeated for all pairs
    /// of cliques" is quadratic in the clique count; on degenerate graphs
    /// with very many cliques this cap keeps Phase II bounded.
    pub max_pair_work: u64,
}

impl Default for RuleConfig {
    fn default() -> Self {
        RuleConfig {
            metric: ClusterDistance::D2,
            degree_thresholds: Vec::new(),
            max_antecedent: 3,
            max_consequent: 2,
            max_rules: 100_000,
            max_pair_work: 10_000_000,
        }
    }
}

/// A distance-based association rule over graph nodes.
#[derive(Debug, Clone, PartialEq)]
pub struct Dar {
    /// Antecedent cluster indices (into the graph's cluster slice), sorted.
    pub antecedent: Vec<usize>,
    /// Consequent cluster indices, sorted.
    pub consequent: Vec<usize>,
    /// Normalized degree of association: the worst (largest)
    /// `D(C_Yj[Yj], C_Xi[Yj]) / D0_Yj` over all antecedent–consequent
    /// pairs. Always ≤ 1 for emitted rules; lower is stronger.
    pub degree: f64,
    /// Smallest member-cluster support — a lower-bound proxy for how much
    /// data backs the rule (exact rule frequency needs the optional rescan,
    /// Section 6.2).
    pub min_cluster_support: u64,
}

/// Generates all DARs from the cliques of a clustering graph.
///
/// `cliques` is the output of
/// [`maximal_cliques`](crate::clique::maximal_cliques) over the same graph.
/// Returns rules sorted by (degree, antecedent, consequent); duplicates
/// arising from overlapping cliques are emitted once.
pub fn generate_dars(
    graph: &ClusteringGraph,
    cliques: &[Vec<usize>],
    config: &RuleConfig,
) -> Vec<Dar> {
    generate_dars_capped(graph, cliques, config).0
}

/// Like [`generate_dars`], additionally reporting whether the
/// `max_rules` / `max_pair_work` budgets truncated the enumeration.
pub fn generate_dars_capped(
    graph: &ClusteringGraph,
    cliques: &[Vec<usize>],
    config: &RuleConfig,
) -> (Vec<Dar>, bool) {
    generate_dars_capped_pooled(graph, cliques, config, &ThreadPool::serial())
}

/// [`generate_dars_capped`] parallelized over consequent cliques on the
/// `dar-par` pool. Output is byte-identical to the serial path at every
/// worker count (the serial entry point *is* this function with a serial
/// pool — there is no twin implementation to drift):
///
/// - The triple count per `Q2` (`|consequent subsets| × |cliques|`) is
///   data-independent, so the serial `max_pair_work` cutoff is reproduced
///   exactly from precomputed prefix offsets: task `i` examines at most
///   `max_pair_work − offsetᵢ` triples.
/// - Each task emits its candidates in serial enumeration order with a
///   task-local keep-first dedup; a `Dar`'s fields are fully determined by
///   its `(antecedent, consequent)` key, so dropping later duplicates
///   never changes a value.
/// - A sequential merge in `Q2` order re-applies the global dedup and the
///   `max_rules` cutoff at exactly the rule where the serial loop stops.
pub fn generate_dars_capped_pooled(
    graph: &ClusteringGraph,
    cliques: &[Vec<usize>],
    config: &RuleConfig,
    pool: &ThreadPool,
) -> (Vec<Dar>, bool) {
    // Consequent subsets of each Q2, enumerated once; antecedents come
    // from every clique Q1 (including Q2 itself).
    let consequents: Vec<Vec<Vec<usize>>> =
        cliques.iter().map(|q2| subsets_up_to(q2, config.max_consequent)).collect();
    let mut offsets: Vec<u64> = Vec::with_capacity(cliques.len());
    let mut total_work: u64 = 0;
    for cons in &consequents {
        offsets.push(total_work);
        total_work =
            total_work.saturating_add((cons.len() as u64).saturating_mul(cliques.len() as u64));
    }
    let mut truncated = config.max_pair_work != 0 && total_work > config.max_pair_work;

    let tasks = pool.map_indexed("rule_gen", cliques.len(), 1, |i| {
        let budget = if config.max_pair_work == 0 {
            u64::MAX
        } else {
            config.max_pair_work.saturating_sub(offsets[i])
        };
        q2_candidates(graph, cliques, &consequents[i], config, budget)
    });

    let mut seen: BTreeSet<(Vec<usize>, Vec<usize>)> = BTreeSet::new();
    let mut out: Vec<Dar> = Vec::new();
    'merge: for task in tasks {
        for dar in task {
            let key = (dar.antecedent.clone(), dar.consequent.clone());
            if !seen.insert(key) {
                continue;
            }
            out.push(dar);
            if config.max_rules != 0 && out.len() >= config.max_rules {
                truncated = true;
                break 'merge;
            }
        }
    }
    sort_rules(&mut out);
    (out, truncated)
}

/// One rule-generation task: every `(Q1, consequent subset)` triple for a
/// fixed `Q2`, in serial enumeration order, stopping after `budget`
/// triples. The task-local dedup only drops duplicates the global merge
/// would drop anyway (keep-first order is the same).
fn q2_candidates(
    graph: &ClusteringGraph,
    cliques: &[Vec<usize>],
    consequents: &[Vec<usize>],
    config: &RuleConfig,
    budget: u64,
) -> Vec<Dar> {
    let mut seen: BTreeSet<(Vec<usize>, Vec<usize>)> = BTreeSet::new();
    let mut out: Vec<Dar> = Vec::new();
    let mut remaining = budget;
    'q1s: for q1 in cliques {
        for cons in consequents {
            if remaining == 0 {
                break 'q1s;
            }
            remaining -= 1;
            emit_pair(graph, q1, cons, config, &mut seen, &mut out);
        }
    }
    out
}

/// Candidate rules for one clique pair `(Q1, Q2)` given `Q2`'s consequent
/// subsets, in enumeration order and deduplicated within the pair. This is
/// the sampling unit of the anytime mode in `dar-rank`: the caller owns
/// cross-pair deduplication and the final [`sort_rules`].
pub fn pair_candidates(
    graph: &ClusteringGraph,
    q1: &[usize],
    consequents: &[Vec<usize>],
    config: &RuleConfig,
) -> Vec<Dar> {
    let mut seen: BTreeSet<(Vec<usize>, Vec<usize>)> = BTreeSet::new();
    let mut out: Vec<Dar> = Vec::new();
    for cons in consequents {
        emit_pair(graph, q1, cons, config, &mut seen, &mut out);
    }
    out
}

/// All candidate consequent subsets of one clique, for use with
/// [`pair_candidates`].
pub fn consequent_subsets(clique: &[usize], max_consequent: usize) -> Vec<Vec<usize>> {
    subsets_up_to(clique, max_consequent)
}

/// Appends the rules of one `(Q1, consequent subset)` triple, skipping
/// keys already in `seen`.
fn emit_pair(
    graph: &ClusteringGraph,
    q1: &[usize],
    cons: &[usize],
    config: &RuleConfig,
    seen: &mut BTreeSet<(Vec<usize>, Vec<usize>)>,
    out: &mut Vec<Dar>,
) {
    let clusters = graph.clusters();
    // assoc(C_Yj) for each consequent member, intersected.
    let mut candidates: Vec<usize> = q1
        .iter()
        .copied()
        .filter(|&x| {
            cons.iter().all(|&y| {
                if clusters[x].set == clusters[y].set {
                    return false;
                }
                let yset = clusters[y].set;
                let d = config
                    .metric
                    .between(&clusters[y].acf, &clusters[x].acf, yset)
                    .expect("graph clusters are non-empty");
                d <= config.degree_thresholds[yset]
            })
        })
        .filter(|x| !cons.contains(x))
        .collect();
    candidates.sort_unstable();
    candidates.dedup();
    if candidates.is_empty() {
        return;
    }
    for ant in subsets_up_to(&candidates, config.max_antecedent) {
        // Antecedent sets must also be pairwise disjoint with each other;
        // clique membership of Q1 guarantees distinct sets, but
        // `candidates` may be a subset of a clique — still pairwise
        // adjacent, hence distinct.
        let key = (ant.clone(), cons.to_vec());
        if seen.contains(&key) {
            continue;
        }
        let degree = rule_degree(graph, &ant, cons, config);
        let min_cluster_support =
            ant.iter().chain(cons.iter()).map(|&i| clusters[i].support()).min().unwrap_or(0);
        seen.insert(key);
        out.push(Dar { antecedent: ant, consequent: cons.to_vec(), degree, min_cluster_support });
    }
}

/// The canonical rule order: ascending degree, then rule identity. Every
/// artifact the engine serves is sorted this way before ranking, so the
/// output is independent of enumeration (and worker) order.
pub fn sort_rules(rules: &mut [Dar]) {
    rules.sort_by(|a, b| {
        a.degree
            .total_cmp(&b.degree)
            .then_with(|| a.antecedent.cmp(&b.antecedent))
            .then_with(|| a.consequent.cmp(&b.consequent))
    });
}

/// Normalized degree of a candidate rule: the worst pairwise
/// antecedent→consequent association relative to the per-set thresholds.
fn rule_degree(graph: &ClusteringGraph, ant: &[usize], cons: &[usize], config: &RuleConfig) -> f64 {
    let clusters = graph.clusters();
    let mut worst = 0.0f64;
    for &y in cons {
        let yset = clusters[y].set;
        let d0 = config.degree_thresholds[yset];
        for &x in ant {
            let d = config
                .metric
                .between(&clusters[y].acf, &clusters[x].acf, yset)
                .expect("graph clusters are non-empty");
            worst = worst.max(if d0 > 0.0 { d / d0 } else { f64::INFINITY });
        }
    }
    worst
}

/// All non-empty subsets of `items` with at most `max_len` elements, each
/// sorted ascending. Enumerates combinations directly (`Σ_k C(n,k)`), so
/// large cliques with small arity caps stay cheap.
fn subsets_up_to(items: &[usize], max_len: usize) -> Vec<Vec<usize>> {
    let mut sorted: Vec<usize> = items.to_vec();
    sorted.sort_unstable();
    let mut out = Vec::new();
    let mut current = Vec::with_capacity(max_len);
    fn recurse(
        sorted: &[usize],
        start: usize,
        max_len: usize,
        current: &mut Vec<usize>,
        out: &mut Vec<Vec<usize>>,
    ) {
        for i in start..sorted.len() {
            current.push(sorted[i]);
            out.push(current.clone());
            if current.len() < max_len {
                recurse(sorted, i + 1, max_len, current, out);
            }
            current.pop();
        }
    }
    if max_len > 0 {
        recurse(&sorted, 0, max_len, &mut current, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clique::maximal_cliques;
    use crate::graph::GraphConfig;
    use dar_core::{Acf, AcfLayout, ClusterId, ClusterSummary};

    /// Three attribute sets; clusters built from the *same* underlying
    /// tuples so that co-located clusters have coincident images.
    /// Tuples: 10 rows at (age≈44, dep≈3, claims≈12k).
    fn co_located_clusters() -> Vec<ClusterSummary> {
        let layout = AcfLayout::new(vec![1, 1, 1]);
        let mut acfs: Vec<Acf> = (0..3).map(|set| Acf::empty(&layout, set)).collect();
        for k in 0..10 {
            let jitter = 0.05 * k as f64;
            let projections =
                vec![vec![44.0 + jitter], vec![3.0 + jitter * 0.1], vec![12_000.0 + jitter * 10.0]];
            for acf in &mut acfs {
                acf.add_row(&projections);
            }
        }
        acfs.into_iter()
            .enumerate()
            .map(|(i, acf)| ClusterSummary { id: ClusterId(i as u32), set: i, acf })
            .collect()
    }

    fn mine(clusters: Vec<ClusterSummary>, d0: f64, degree: f64) -> (ClusteringGraph, Vec<Dar>) {
        let num_sets = 3;
        let gcfg = GraphConfig {
            metric: ClusterDistance::D2,
            density_thresholds: vec![d0; num_sets],
            prune_poor_density: false,
        };
        let graph = ClusteringGraph::build(clusters, &gcfg);
        let (cliques, _) = maximal_cliques(graph.adjacency(), 0);
        let rcfg = RuleConfig {
            metric: ClusterDistance::D2,
            degree_thresholds: vec![degree; num_sets],
            max_antecedent: 2,
            max_consequent: 2,
            max_rules: 0,
            max_pair_work: 0,
        };
        let rules = generate_dars(&graph, &cliques, &rcfg);
        (graph, rules)
    }

    #[test]
    fn co_located_clusters_yield_rules_of_all_arities() {
        let (graph, rules) = mine(co_located_clusters(), 5.0, 5.0);
        assert_eq!(graph.edges, 3, "triangle over the three sets");
        assert!(!rules.is_empty());
        // 1:1 rules both directions.
        assert!(rules.iter().any(|r| r.antecedent == vec![0] && r.consequent == vec![2]));
        assert!(rules.iter().any(|r| r.antecedent == vec![2] && r.consequent == vec![0]));
        // N:1 rule {age, dep} ⇒ claims.
        assert!(rules.iter().any(|r| r.antecedent == vec![0, 1] && r.consequent == vec![2]));
        // 1:N rule age ⇒ {dep, claims}.
        assert!(rules.iter().any(|r| r.antecedent == vec![0] && r.consequent == vec![1, 2]));
        // All degrees are within threshold and normalized.
        for r in &rules {
            assert!(r.degree <= 1.0 + 1e-9, "{r:?}");
            assert_eq!(r.min_cluster_support, 10);
        }
        // No duplicates.
        let mut keys: Vec<_> =
            rules.iter().map(|r| (r.antecedent.clone(), r.consequent.clone())).collect();
        let before = keys.len();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), before);
    }

    #[test]
    fn degree_threshold_gates_rules() {
        // With a tiny degree threshold nothing associates.
        let (_, rules) = mine(co_located_clusters(), 5.0, 1e-6);
        assert!(rules.is_empty());
    }

    #[test]
    fn arity_caps_are_respected() {
        let layoutless = co_located_clusters();
        let gcfg = GraphConfig {
            metric: ClusterDistance::D2,
            density_thresholds: vec![5.0; 3],
            prune_poor_density: false,
        };
        let graph = ClusteringGraph::build(layoutless, &gcfg);
        let (cliques, _) = maximal_cliques(graph.adjacency(), 0);
        let rcfg = RuleConfig {
            metric: ClusterDistance::D2,
            degree_thresholds: vec![5.0; 3],
            max_antecedent: 1,
            max_consequent: 1,
            max_rules: 0,
            max_pair_work: 0,
        };
        let rules = generate_dars(&graph, &cliques, &rcfg);
        assert!(rules.iter().all(|r| r.antecedent.len() == 1 && r.consequent.len() == 1));
        // 3 clusters × 2 directed pairs each = 6 1:1 rules.
        assert_eq!(rules.len(), 6);
    }

    #[test]
    fn max_rules_truncates() {
        let (graph, _) = mine(co_located_clusters(), 5.0, 5.0);
        let (cliques, _) = maximal_cliques(graph.adjacency(), 0);
        let rcfg = RuleConfig {
            metric: ClusterDistance::D2,
            degree_thresholds: vec![5.0; 3],
            max_antecedent: 2,
            max_consequent: 2,
            max_rules: 3,
            max_pair_work: 0,
        };
        let (rules, truncated) = generate_dars_capped(&graph, &cliques, &rcfg);
        assert_eq!(rules.len(), 3);
        assert!(truncated);
    }

    /// Several co-located groups far apart from each other: each group
    /// forms its own triangle in the clustering graph, so the clique list
    /// has one entry per group and the pooled rule generator gets real
    /// multi-task fan-out.
    fn multi_group_clusters(groups: usize) -> Vec<ClusterSummary> {
        let layout = AcfLayout::new(vec![1, 1, 1]);
        let mut out = Vec::new();
        for g in 0..groups {
            let base = 1_000.0 * g as f64;
            let mut acfs: Vec<Acf> = (0..3).map(|set| Acf::empty(&layout, set)).collect();
            for k in 0..10 {
                let jitter = 0.05 * k as f64;
                let projections = vec![
                    vec![base + 44.0 + jitter],
                    vec![base + 3.0 + jitter * 0.1],
                    vec![base + 120.0 + jitter * 10.0],
                ];
                for acf in &mut acfs {
                    acf.add_row(&projections);
                }
            }
            out.extend(acfs.into_iter().enumerate().map(|(i, acf)| ClusterSummary {
                id: ClusterId((g * 3 + i) as u32),
                set: i,
                acf,
            }));
        }
        out
    }

    #[test]
    fn pooled_rule_generation_is_byte_identical_at_every_worker_count() {
        let gcfg = GraphConfig {
            metric: ClusterDistance::D2,
            density_thresholds: vec![55.0; 3],
            prune_poor_density: false,
        };
        let graph = ClusteringGraph::build(multi_group_clusters(4), &gcfg);
        let (cliques, _) = maximal_cliques(graph.adjacency(), 0);
        assert!(cliques.len() >= 4, "want one clique per group, got {}", cliques.len());
        let base = RuleConfig {
            metric: ClusterDistance::D2,
            degree_thresholds: vec![55.0; 3],
            max_antecedent: 2,
            max_consequent: 2,
            max_rules: 0,
            max_pair_work: 0,
        };
        // Uncapped, rules-capped, work-capped, and both caps at once: the
        // pooled path must reproduce the serial truncation point exactly.
        let configs = [
            base.clone(),
            RuleConfig { max_rules: 5, ..base.clone() },
            RuleConfig { max_pair_work: 3, ..base.clone() },
            RuleConfig { max_rules: 4, max_pair_work: 7, ..base.clone() },
        ];
        for config in &configs {
            let serial = generate_dars_capped(&graph, &cliques, config);
            for workers in [1usize, 2, 4, 8] {
                let pool = ThreadPool::new(workers);
                let pooled = generate_dars_capped_pooled(&graph, &cliques, config, &pool);
                assert_eq!(serial, pooled, "workers={workers} config={config:?}");
            }
        }
    }

    #[test]
    fn pair_candidates_cover_the_uncapped_enumeration() {
        // Union of per-pair candidates (with cross-pair dedup) equals the
        // full generator's output — the invariant the anytime sampler
        // relies on for full-budget convergence.
        let gcfg = GraphConfig {
            metric: ClusterDistance::D2,
            density_thresholds: vec![55.0; 3],
            prune_poor_density: false,
        };
        let graph = ClusteringGraph::build(multi_group_clusters(3), &gcfg);
        let (cliques, _) = maximal_cliques(graph.adjacency(), 0);
        let config = RuleConfig {
            metric: ClusterDistance::D2,
            degree_thresholds: vec![55.0; 3],
            max_antecedent: 2,
            max_consequent: 2,
            max_rules: 0,
            max_pair_work: 0,
        };
        let exact = generate_dars(&graph, &cliques, &config);
        let mut seen = BTreeSet::new();
        let mut sampled = Vec::new();
        for q2 in &cliques {
            let consequents = consequent_subsets(q2, config.max_consequent);
            for q1 in &cliques {
                for dar in pair_candidates(&graph, q1, &consequents, &config) {
                    if seen.insert((dar.antecedent.clone(), dar.consequent.clone())) {
                        sampled.push(dar);
                    }
                }
            }
        }
        sort_rules(&mut sampled);
        assert_eq!(exact, sampled);
    }

    #[test]
    fn subsets_enumeration() {
        let s = subsets_up_to(&[4, 7, 9], 2);
        assert_eq!(s.len(), 6); // 3 singletons + 3 pairs
        assert!(s.contains(&vec![4, 9]));
        assert!(subsets_up_to(&[], 2).is_empty());
        assert!(subsets_up_to(&[1], 0).is_empty());
    }

    #[test]
    fn output_sorted_by_degree() {
        let (_, rules) = mine(co_located_clusters(), 5.0, 5.0);
        for w in rules.windows(2) {
            assert!(w[0].degree <= w[1].degree);
        }
    }
}
