//! Maximal-clique enumeration over the clustering graph.
//!
//! Section 6.2: "From the clustering graph, we find all maximal cliques.
//! These cliques correspond to large itemsets for DARs." Because same-set
//! clusters are never adjacent, the graph is multipartite and every clique
//! picks at most one cluster per attribute set.
//!
//! The implementation is Bron–Kerbosch with pivoting over `u64` bitsets;
//! isolated vertices surface as trivial 1-cliques, matching the paper's
//! note that "by definition a single vertex is a trivial 1-clique".

/// A bitset of graph nodes.
type Bits = Vec<u64>;

fn bits_new(words: usize) -> Bits {
    vec![0u64; words]
}

fn bit_set(b: &mut Bits, i: usize) {
    b[i / 64] |= 1 << (i % 64);
}

fn bit_clear(b: &mut Bits, i: usize) {
    b[i / 64] &= !(1 << (i % 64));
}

fn bits_is_empty(b: &Bits) -> bool {
    b.iter().all(|&w| w == 0)
}

fn bits_and(a: &Bits, b: &Bits) -> Bits {
    a.iter().zip(b).map(|(x, y)| x & y).collect()
}

fn bits_count_and(a: &Bits, b: &Bits) -> u32 {
    a.iter().zip(b).map(|(x, y)| (x & y).count_ones()).sum()
}

fn bits_iter(b: &Bits) -> impl Iterator<Item = usize> + '_ {
    b.iter().enumerate().flat_map(|(w, &word)| {
        let mut bits = word;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let t = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(w * 64 + t)
            }
        })
    })
}

/// Enumerates all maximal cliques of the graph given as bitset adjacency
/// rows (as produced by
/// [`ClusteringGraph::adjacency`](crate::graph::ClusteringGraph::adjacency)),
/// on the calling thread.
///
/// Stops after `cap` cliques (0 = unbounded); the boolean reports whether
/// the enumeration was truncated. Cliques and their members are returned in
/// ascending node order.
pub fn maximal_cliques(adj: &[Bits], cap: usize) -> (Vec<Vec<usize>>, bool) {
    maximal_cliques_pooled(adj, cap, &dar_par::ThreadPool::serial())
}

/// [`maximal_cliques`] with the enumeration parallelized across `pool`.
///
/// A clique is connected, so maximal cliques factor over the connected
/// components of the graph: each component is enumerated independently (a
/// natural shard — no clique spans two components) and the per-component
/// clique lists are folded in ascending component order (components ordered
/// by smallest member). The serial path runs the *same* per-component
/// decomposition on one worker, so the result — including which cliques
/// survive a `cap` and the final sorted order — is byte-identical at every
/// worker count. Under a cap, each component enumerates at most `cap`
/// cliques and the ordered fold keeps a running budget, truncating the
/// later components deterministically.
pub fn maximal_cliques_pooled(
    adj: &[Bits],
    cap: usize,
    pool: &dar_par::ThreadPool,
) -> (Vec<Vec<usize>>, bool) {
    /// Below this many components the scope spawn outweighs the work.
    const PARALLEL_MIN_COMPONENTS: usize = 4;

    let components = connected_components(adj);
    let serial = dar_par::ThreadPool::serial();
    let pool = if components.len() < PARALLEL_MIN_COMPONENTS { &serial } else { pool };
    // One task per component; chunk 1 because component sizes are wildly
    // uneven (one giant component plus singletons is the common shape).
    let per_component = pool.map_indexed("cliques", components.len(), 1, |c| {
        component_cliques(adj, &components[c], cap)
    });

    // Ordered reduction with a sequential cap budget.
    let mut out = Vec::new();
    let mut truncated = false;
    for (cliques, comp_truncated) in per_component {
        if cap != 0 && out.len() + cliques.len() > cap {
            let remaining = cap - out.len();
            out.extend(cliques.into_iter().take(remaining));
            truncated = true;
            break;
        }
        truncated |= comp_truncated;
        out.extend(cliques);
    }
    out.sort();
    (out, truncated)
}

/// The connected components of the graph, each a sorted vertex list, in
/// ascending order of smallest member. Isolated vertices are their own
/// components (the paper's trivial 1-cliques).
fn connected_components(adj: &[Bits]) -> Vec<Vec<usize>> {
    let n = adj.len();
    let mut visited = vec![false; n];
    let mut components = Vec::new();
    let mut stack = Vec::new();
    for start in 0..n {
        if visited[start] {
            continue;
        }
        visited[start] = true;
        stack.push(start);
        let mut component = Vec::new();
        while let Some(v) = stack.pop() {
            component.push(v);
            for u in bits_iter(&adj[v]) {
                if !visited[u] {
                    visited[u] = true;
                    stack.push(u);
                }
            }
        }
        component.sort_unstable();
        components.push(component);
    }
    components
}

/// Runs Bron–Kerbosch over one component, relabelled to a compact local id
/// space (ascending, so local order mirrors global order), and maps the
/// cliques back to global vertex ids.
fn component_cliques(adj: &[Bits], component: &[usize], cap: usize) -> (Vec<Vec<usize>>, bool) {
    let k = component.len();
    if k == 1 {
        return (vec![vec![component[0]]], false);
    }
    let words = k.div_ceil(64);
    // Global→local: component is sorted, so binary search relabels.
    let local = |g: usize| component.binary_search(&g).expect("neighbor stays in component");
    let mut local_adj = vec![bits_new(words); k];
    for (l, &g) in component.iter().enumerate() {
        for u in bits_iter(&adj[g]) {
            bit_set(&mut local_adj[l], local(u));
        }
    }
    let mut p = bits_new(words);
    for i in 0..k {
        bit_set(&mut p, i);
    }
    let x = bits_new(words);
    let mut out = Vec::new();
    let mut r = Vec::new();
    let truncated = bron_kerbosch(&local_adj, &mut r, p, x, &mut out, cap);
    let mut global: Vec<Vec<usize>> =
        out.into_iter().map(|c| c.into_iter().map(|l| component[l]).collect()).collect();
    global.sort();
    (global, truncated)
}

/// Returns `true` if the cap aborted the enumeration.
fn bron_kerbosch(
    adj: &[Bits],
    r: &mut Vec<usize>,
    p: Bits,
    x: Bits,
    out: &mut Vec<Vec<usize>>,
    cap: usize,
) -> bool {
    if cap != 0 && out.len() >= cap {
        return true;
    }
    if bits_is_empty(&p) && bits_is_empty(&x) {
        let mut clique = r.clone();
        clique.sort_unstable();
        out.push(clique);
        return false;
    }
    // Pivot: the vertex of P ∪ X with the most neighbours in P.
    let pivot = bits_iter(&p)
        .chain(bits_iter(&x))
        .max_by_key(|&u| bits_count_and(&adj[u], &p))
        .expect("P ∪ X is non-empty here");
    // Candidates: P \ N(pivot).
    let candidates: Vec<usize> =
        bits_iter(&p).filter(|&v| adj[pivot][v / 64] & (1 << (v % 64)) == 0).collect();
    let mut p = p;
    let mut x = x;
    for v in candidates {
        r.push(v);
        let p_next = bits_and(&p, &adj[v]);
        let x_next = bits_and(&x, &adj[v]);
        let aborted = bron_kerbosch(adj, r, p_next, x_next, out, cap);
        r.pop();
        if aborted {
            return true;
        }
        bit_clear(&mut p, v);
        bit_set(&mut x, v);
    }
    false
}

/// Cliques of size ≥ 2 — the "non-trivial" cliques reported in Section 7.2.
pub fn non_trivial(cliques: &[Vec<usize>]) -> usize {
    cliques.iter().filter(|c| c.len() >= 2).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds bitset adjacency from an edge list.
    fn graph(n: usize, edges: &[(usize, usize)]) -> Vec<Bits> {
        let words = n.div_ceil(64);
        let mut adj = vec![bits_new(words); n];
        for &(a, b) in edges {
            bit_set(&mut adj[a], b);
            bit_set(&mut adj[b], a);
        }
        adj
    }

    #[test]
    fn triangle_plus_pendant() {
        // 0-1-2 triangle, 3 attached to 2, 4 isolated.
        let adj = graph(5, &[(0, 1), (1, 2), (0, 2), (2, 3)]);
        let (cliques, truncated) = maximal_cliques(&adj, 0);
        assert!(!truncated);
        assert_eq!(cliques, vec![vec![0, 1, 2], vec![2, 3], vec![4]]);
        assert_eq!(non_trivial(&cliques), 2);
    }

    #[test]
    fn empty_graph_yields_singletons() {
        let adj = graph(3, &[]);
        let (cliques, _) = maximal_cliques(&adj, 0);
        assert_eq!(cliques, vec![vec![0], vec![1], vec![2]]);
        assert_eq!(non_trivial(&cliques), 0);
    }

    #[test]
    fn complete_graph_is_one_clique() {
        let edges: Vec<(usize, usize)> =
            (0..6).flat_map(|i| ((i + 1)..6).map(move |j| (i, j))).collect();
        let adj = graph(6, &edges);
        let (cliques, _) = maximal_cliques(&adj, 0);
        assert_eq!(cliques, vec![vec![0, 1, 2, 3, 4, 5]]);
    }

    #[test]
    fn no_nodes_yields_no_cliques() {
        // The vertex-free graph yields *zero* cliques, not one empty
        // clique: a clique corresponds to a candidate large itemset, and
        // an itemset over no clusters would mine vacuous rules. This is
        // the contract `dar-cluster`'s coordinator relies on for the
        // empty-shard / empty-merge path (see DESIGN.md §12), so it is
        // pinned here rather than left convention-dependent.
        let (cliques, truncated) = maximal_cliques(&[], 0);
        assert!(!truncated);
        assert!(cliques.is_empty(), "vertex-free graph must yield no cliques, got {cliques:?}");
        let pool = dar_par::ThreadPool::new(2);
        let (pooled, pooled_truncated) = maximal_cliques_pooled(&[], 7, &pool);
        assert!(!pooled_truncated);
        assert!(pooled.is_empty());
    }

    #[test]
    fn cap_truncates() {
        let adj = graph(4, &[]);
        let (cliques, truncated) = maximal_cliques(&adj, 2);
        assert!(truncated);
        assert_eq!(cliques.len(), 2);
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        // Deterministic xorshift-driven random graphs, checked against a
        // brute-force maximal-clique enumerator.
        let mut seed = 0xDEADBEEFu64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for trial in 0..20 {
            let n = 3 + (trial % 8);
            let mut edges = Vec::new();
            for i in 0..n {
                for j in (i + 1)..n {
                    if next() % 3 == 0 {
                        edges.push((i, j));
                    }
                }
            }
            let adj = graph(n, &edges);
            let (mut got, truncated) = maximal_cliques(&adj, 0);
            assert!(!truncated);
            got.sort();
            let mut want = brute_force(n, &adj);
            want.sort();
            assert_eq!(got, want, "trial {trial}, edges {edges:?}");
        }
    }

    #[test]
    fn pooled_enumeration_is_identical_at_every_worker_count() {
        // Random graphs with several components: the pooled result —
        // including the truncated flag and which cliques survive a cap —
        // must match the serial result exactly.
        let mut seed = 0xC0FFEEu64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for trial in 0..10 {
            let n = 12 + (trial % 10);
            let mut edges = Vec::new();
            for i in 0..n {
                for j in (i + 1)..n {
                    // Sparse: ~1 edge in 5, so multiple components form.
                    if next() % 5 == 0 {
                        edges.push((i, j));
                    }
                }
            }
            let adj = graph(n, &edges);
            for cap in [0usize, 1, 3, 100] {
                let want = maximal_cliques(&adj, cap);
                for workers in [2usize, 4, 8] {
                    let pool = dar_par::ThreadPool::new(workers);
                    let got = maximal_cliques_pooled(&adj, cap, &pool);
                    assert_eq!(got, want, "trial {trial}, cap {cap}, workers {workers}");
                }
            }
        }
    }

    #[test]
    fn cap_budget_is_spent_in_component_order() {
        // Components {0,1}, {2}, {3,4,5} (a triangle): ascending-min-vertex
        // fold spends the budget on [0,1] then [2], then truncates.
        let adj = graph(6, &[(0, 1), (3, 4), (4, 5), (3, 5)]);
        let (cliques, truncated) = maximal_cliques(&adj, 2);
        assert!(truncated);
        assert_eq!(cliques, vec![vec![0, 1], vec![2]]);
        let (all, not_truncated) = maximal_cliques(&adj, 0);
        assert!(!not_truncated);
        assert_eq!(all, vec![vec![0, 1], vec![2], vec![3, 4, 5]]);
    }

    fn brute_force(n: usize, adj: &[Bits]) -> Vec<Vec<usize>> {
        let is_clique = |set: u32| -> bool {
            let members: Vec<usize> = (0..n).filter(|&i| set & (1 << i) != 0).collect();
            members
                .iter()
                .all(|&a| members.iter().all(|&b| a == b || adj[a][b / 64] & (1 << (b % 64)) != 0))
        };
        let mut cliques = Vec::new();
        for set in 1u32..(1 << n) {
            if !is_clique(set) {
                continue;
            }
            // Maximal: no superset is a clique.
            let maximal = (0..n).all(|v| set & (1 << v) != 0 || !is_clique(set | (1 << v)));
            if maximal {
                cliques.push((0..n).filter(|&i| set & (1 << i) != 0).collect());
            }
        }
        cliques
    }
}
