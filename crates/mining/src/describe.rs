//! Human-readable descriptions of clusters and rules.
//!
//! Section 7.2: "A cluster can be described by its centroid, but we have
//! found that this is not the most meaningful description. ... we have
//! chosen to describe a cluster by its smallest bounding box."

use crate::rules::Dar;
use dar_core::{ClusterSummary, Partitioning, Schema};
use std::fmt::Write as _;

/// Renders one cluster as `Attr∈[lo, hi]` (joined with `∧` for
/// multi-attribute sets), using the schema's attribute names.
pub fn describe_cluster(
    cluster: &ClusterSummary,
    schema: &Schema,
    partitioning: &Partitioning,
) -> String {
    let attrs = &partitioning.set(cluster.set).attrs;
    let bbox = cluster.bbox();
    let mut out = String::new();
    for (d, &attr) in attrs.iter().enumerate() {
        if d > 0 {
            out.push_str(" ∧ ");
        }
        let name = schema.attribute(attr).map(|a| a.name.as_str()).unwrap_or("?");
        let iv = bbox.interval(d);
        if iv.lo == iv.hi {
            let _ = write!(out, "{name}={}", round3(iv.lo));
        } else {
            let _ = write!(out, "{name}∈[{}, {}]", round3(iv.lo), round3(iv.hi));
        }
    }
    out
}

/// Renders a DAR as `A ∧ B ⇒ C (degree 0.31, support ≥ 42)`.
pub fn describe_rule(
    rule: &Dar,
    clusters: &[ClusterSummary],
    schema: &Schema,
    partitioning: &Partitioning,
) -> String {
    let side = |ids: &[usize]| {
        ids.iter()
            .map(|&i| describe_cluster(&clusters[i], schema, partitioning))
            .collect::<Vec<_>>()
            .join(" ∧ ")
    };
    format!(
        "{} ⇒ {} (degree {:.3}, support ≥ {})",
        side(&rule.antecedent),
        side(&rule.consequent),
        rule.degree,
        rule.min_cluster_support
    )
}

/// Serializes rules as tab-separated values: one row per rule with
/// `antecedent`, `consequent`, `degree`, `min_support`, and optionally the
/// exact `frequency` (pass the rescan output, or `&[]`). Machine-friendly
/// counterpart of [`describe_rule`]; the header row comes first.
pub fn rules_to_tsv(
    rules: &[Dar],
    frequencies: &[u64],
    clusters: &[ClusterSummary],
    schema: &Schema,
    partitioning: &Partitioning,
) -> String {
    let mut out = String::from("antecedent\tconsequent\tdegree\tmin_support\tfrequency\n");
    let side = |ids: &[usize]| {
        ids.iter()
            .map(|&i| describe_cluster(&clusters[i], schema, partitioning))
            .collect::<Vec<_>>()
            .join(" ∧ ")
    };
    for (i, rule) in rules.iter().enumerate() {
        let freq = frequencies.get(i).map(u64::to_string).unwrap_or_default();
        let _ = writeln!(
            out,
            "{}\t{}\t{:.6}\t{}\t{freq}",
            side(&rule.antecedent),
            side(&rule.consequent),
            rule.degree,
            rule.min_cluster_support,
        );
    }
    out
}

fn round3(v: f64) -> f64 {
    (v * 1000.0).round() / 1000.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use dar_core::{Acf, AcfLayout, Attribute, ClusterId, Metric, Schema};

    fn setup() -> (Schema, Partitioning, Vec<ClusterSummary>) {
        let schema = Schema::new(vec![Attribute::interval("Age"), Attribute::interval("Claims")]);
        let p = Partitioning::per_attribute(&schema, Metric::Euclidean);
        let layout = AcfLayout::from_partitioning(&p);
        let mut age = Acf::empty(&layout, 0);
        age.add_row(&[vec![41.0], vec![10_000.0]]);
        age.add_row(&[vec![47.0], vec![14_000.0]]);
        let mut claims = Acf::empty(&layout, 1);
        claims.add_row(&[vec![41.0], vec![12_000.0]]);
        let clusters = vec![
            ClusterSummary { id: ClusterId(0), set: 0, acf: age },
            ClusterSummary { id: ClusterId(1), set: 1, acf: claims },
        ];
        (schema, p, clusters)
    }

    #[test]
    fn cluster_descriptions_use_names_and_bboxes() {
        let (schema, p, clusters) = setup();
        assert_eq!(describe_cluster(&clusters[0], &schema, &p), "Age∈[41, 47]");
        assert_eq!(describe_cluster(&clusters[1], &schema, &p), "Claims=12000");
    }

    #[test]
    fn rule_description_joins_sides() {
        let (schema, p, clusters) = setup();
        let rule =
            Dar { antecedent: vec![0], consequent: vec![1], degree: 0.25, min_cluster_support: 1 };
        let s = describe_rule(&rule, &clusters, &schema, &p);
        assert_eq!(s, "Age∈[41, 47] ⇒ Claims=12000 (degree 0.250, support ≥ 1)");
    }

    #[test]
    fn tsv_export_with_and_without_frequencies() {
        let (schema, p, clusters) = setup();
        let rules = vec![Dar {
            antecedent: vec![0],
            consequent: vec![1],
            degree: 0.25,
            min_cluster_support: 2,
        }];
        let tsv = rules_to_tsv(&rules, &[42], &clusters, &schema, &p);
        let mut lines = tsv.lines();
        assert_eq!(lines.next().unwrap(), "antecedent\tconsequent\tdegree\tmin_support\tfrequency");
        let row = lines.next().unwrap();
        assert_eq!(row, "Age∈[41, 47]\tClaims=12000\t0.250000\t2\t42");
        // Without frequencies the last column is empty.
        let tsv = rules_to_tsv(&rules, &[], &clusters, &schema, &p);
        assert!(tsv.lines().nth(1).unwrap().ends_with('\t'));
    }
}
