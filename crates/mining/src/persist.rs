//! Cluster-summary persistence: save Phase I output, re-run Phase II later.
//!
//! The whole point of ACFs is that Phase II needs *only* the summaries
//! (Theorem 6.1). Persisting them separates the expensive single data scan
//! from the cheap, re-tunable rule search — mine once, then sweep density
//! and degree thresholds offline without touching the data again.
//!
//! The format is a line-oriented text file; floats are written with Rust's
//! shortest-roundtrip formatting, so a save/load cycle is lossless.
//!
//! ```text
//! acf-clusters v1 sets=<k> dims=<d0,d1,…>
//! cluster id=<u32> set=<usize> n=<u64>
//! bbox <lo> <hi> [<lo> <hi> …]
//! image <set> ls=<v,…> ss=<v,…>
//! (one image line per set, then the next cluster)
//! ```

use dar_core::{Acf, BoundingBox, Cf, ClusterId, ClusterSummary, CoreError, Interval};
use std::fmt::Write as _;

/// Serializes cluster summaries (all sharing one layout) to the text
/// format. Returns an error if the clusters disagree on the number of
/// sets.
pub fn write_clusters(clusters: &[ClusterSummary]) -> Result<String, CoreError> {
    let Some(first) = clusters.first() else {
        return Ok("acf-clusters v1 sets=0 dims=\n".to_string());
    };
    let num_sets = first.acf.num_sets();
    let dims: Vec<String> = (0..num_sets).map(|s| first.acf.image(s).dims().to_string()).collect();
    let mut out = format!("acf-clusters v1 sets={num_sets} dims={}\n", dims.join(","));
    for c in clusters {
        if c.acf.num_sets() != num_sets {
            return Err(CoreError::LayoutMismatch(format!(
                "cluster {} has {} sets, expected {num_sets}",
                c.id,
                c.acf.num_sets()
            )));
        }
        let _ = writeln!(out, "cluster id={} set={} n={}", c.id.0, c.set, c.support());
        let _ = write!(out, "bbox");
        for iv in c.bbox().intervals() {
            let _ = write!(out, " {:?} {:?}", iv.lo, iv.hi);
        }
        out.push('\n');
        for s in 0..num_sets {
            let cf = c.acf.image(s);
            let ls: Vec<String> = cf.linear_sum().iter().map(|v| format!("{v:?}")).collect();
            let ss: Vec<String> = cf.square_sum().iter().map(|v| format!("{v:?}")).collect();
            let _ = writeln!(out, "image {s} ls={} ss={}", ls.join(","), ss.join(","));
        }
    }
    Ok(out)
}

/// Parses the text format back into cluster summaries. Sealed files (a
/// trailing `dar-durable` checksum footer) are verified and unsealed
/// first; unsealed files parse as before. Parse errors name the offending
/// line (1-based within `text`).
pub fn read_clusters(text: &str) -> Result<Vec<ClusterSummary>, CoreError> {
    read_clusters_at(text, 1)
}

/// Like [`read_clusters`], but error line numbers start at `first_line` —
/// for callers embedding the cluster body inside a larger file (the
/// engine snapshot format), so errors point into the enclosing file.
pub fn read_clusters_at(text: &str, first_line: usize) -> Result<Vec<ClusterSummary>, CoreError> {
    let body = dar_durable::unseal(text)
        .map_err(|detail| CoreError::LayoutMismatch(format!("cluster file footer: {detail}")))?
        .0;
    // `at` converts a 0-based index into `body` to the caller's line
    // numbering; errors from the keyed-field helpers get it prepended.
    let at = |idx: usize| idx + first_line;
    let located = |idx: usize, e: CoreError| match e {
        CoreError::LayoutMismatch(msg) => {
            CoreError::LayoutMismatch(format!("line {}: {msg}", at(idx)))
        }
        other => other,
    };
    let mut lines = body.lines().enumerate();
    let (_, header) = lines
        .next()
        .ok_or_else(|| CoreError::LayoutMismatch(format!("line {}: empty cluster file", at(0))))?;
    let num_sets: usize = field(header, "sets=")
        .and_then(|v| {
            v.parse().map_err(|_| CoreError::LayoutMismatch(format!("bad sets= field {v:?}")))
        })
        .map_err(|e| located(0, e))?;

    let mut out = Vec::new();
    while let Some((i, line)) = lines.next() {
        if line.trim().is_empty() {
            continue;
        }
        if !line.starts_with("cluster ") {
            return Err(CoreError::LayoutMismatch(format!(
                "line {}: expected cluster line, got {line:?}",
                at(i)
            )));
        }
        let id: u32 = parse_field(line, "id=").map_err(|e| located(i, e))?;
        let set: usize = parse_field(line, "set=").map_err(|e| located(i, e))?;
        let n: u64 = parse_field(line, "n=").map_err(|e| located(i, e))?;

        let (bi, bbox_line) = lines.next().ok_or_else(|| {
            CoreError::LayoutMismatch(format!("line {}: missing bbox line", at(i + 1)))
        })?;
        let nums: Vec<f64> = bbox_line
            .strip_prefix("bbox")
            .ok_or_else(|| {
                CoreError::LayoutMismatch(format!(
                    "line {}: expected bbox, got {bbox_line:?}",
                    at(bi)
                ))
            })?
            .split_whitespace()
            .map(|t| {
                t.parse::<f64>().map_err(|_| {
                    CoreError::LayoutMismatch(format!("line {}: bad bbox number {t:?}", at(bi)))
                })
            })
            .collect::<Result<_, _>>()?;
        let intervals: Vec<Interval> =
            nums.chunks(2).map(|c| Interval { lo: c[0], hi: c[1] }).collect();
        let bbox = BoundingBox::from_intervals(intervals);

        let mut images = Vec::with_capacity(num_sets);
        for expect in 0..num_sets {
            let (ii, img) = lines.next().ok_or_else(|| {
                CoreError::LayoutMismatch(format!("line {}: missing image line", at(bi + 1)))
            })?;
            let rest = img.strip_prefix("image ").ok_or_else(|| {
                CoreError::LayoutMismatch(format!(
                    "line {}: expected image line, got {img:?}",
                    at(ii)
                ))
            })?;
            let s: usize =
                rest.split_whitespace().next().and_then(|t| t.parse().ok()).ok_or_else(|| {
                    CoreError::LayoutMismatch(format!("line {}: bad image set index", at(ii)))
                })?;
            if s != expect {
                return Err(CoreError::LayoutMismatch(format!(
                    "line {}: image set {s} out of order (expected {expect})",
                    at(ii)
                )));
            }
            let ls = field(rest, "ls=").and_then(parse_floats).map_err(|e| located(ii, e))?;
            let ss = field(rest, "ss=").and_then(parse_floats).map_err(|e| located(ii, e))?;
            images.push(Cf::from_moments(n, ls, ss)?);
        }
        let acf = Acf::from_parts(set, images, bbox)?;
        out.push(ClusterSummary { id: ClusterId(id), set, acf });
    }
    Ok(out)
}

/// Extracts the whitespace-terminated value of `key` inside `line`.
fn field<'a>(line: &'a str, key: &str) -> Result<&'a str, CoreError> {
    let start = line
        .find(key)
        .ok_or_else(|| CoreError::LayoutMismatch(format!("missing {key} in {line:?}")))?
        + key.len();
    let rest = &line[start..];
    Ok(rest.split_whitespace().next().unwrap_or(rest))
}

fn parse_field<T: std::str::FromStr>(line: &str, key: &str) -> Result<T, CoreError> {
    field(line, key)?
        .parse()
        .map_err(|_| CoreError::LayoutMismatch(format!("bad {key} field in {line:?}")))
}

fn parse_floats(csv: &str) -> Result<Vec<f64>, CoreError> {
    if csv.is_empty() {
        return Ok(Vec::new());
    }
    csv.split(',')
        .map(|t| {
            t.parse::<f64>().map_err(|_| CoreError::LayoutMismatch(format!("bad float {t:?}")))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dar_core::AcfLayout;

    fn sample_clusters() -> Vec<ClusterSummary> {
        let layout = AcfLayout::new(vec![1, 2]);
        let mut a = Acf::empty(&layout, 0);
        a.add_row(&[vec![1.5], vec![10.0, 0.25]]);
        a.add_row(&[vec![2.5], vec![11.0, 0.5]]);
        let mut b = Acf::empty(&layout, 1);
        b.add_row(&[vec![-3.125], vec![0.1, 0.2]]);
        vec![
            ClusterSummary { id: ClusterId(3), set: 0, acf: a },
            ClusterSummary { id: ClusterId(9), set: 1, acf: b },
        ]
    }

    #[test]
    fn roundtrip_is_lossless() {
        let clusters = sample_clusters();
        let text = write_clusters(&clusters).unwrap();
        let back = read_clusters(&text).unwrap();
        assert_eq!(clusters, back);
    }

    #[test]
    fn roundtrip_survives_awkward_floats() {
        let layout = AcfLayout::new(vec![1]);
        let mut a = Acf::empty(&layout, 0);
        a.add_row(&[vec![0.1 + 0.2]]); // classic non-representable sum
        a.add_row(&[vec![1e-300]]);
        a.add_row(&[vec![-123456.789012345]]);
        let clusters = vec![ClusterSummary { id: ClusterId(0), set: 0, acf: a }];
        let text = write_clusters(&clusters).unwrap();
        assert_eq!(read_clusters(&text).unwrap(), clusters);
    }

    #[test]
    fn empty_set_roundtrips() {
        let text = write_clusters(&[]).unwrap();
        assert!(read_clusters(&text).unwrap().is_empty());
    }

    #[test]
    fn malformed_inputs_error_cleanly() {
        assert!(read_clusters("").is_err());
        assert!(read_clusters("acf-clusters v1 sets=x dims=").is_err());
        let good = write_clusters(&sample_clusters()).unwrap();
        // Truncate mid-cluster.
        let truncated: String = good.lines().take(2).collect::<Vec<_>>().join("\n");
        assert!(read_clusters(&truncated).is_err());
        // Corrupt a float.
        let corrupt = good.replace("ls=", "ls=oops,");
        assert!(read_clusters(&corrupt).is_err());
    }

    #[test]
    fn errors_name_the_offending_line() {
        let good = write_clusters(&sample_clusters()).unwrap();
        // Header, cluster, bbox, then the first image line: line 4.
        let bad = good.replace("ls=", "ls=oops,");
        let err = read_clusters(&bad).unwrap_err().to_string();
        assert!(err.contains("line 4"), "{err}");
        // Embedded numbering shifts the report by the caller's offset.
        let err = read_clusters_at(&bad, 10).unwrap_err().to_string();
        assert!(err.contains("line 13"), "{err}");
        let err = read_clusters("acf-clusters v1 sets=x dims=").unwrap_err().to_string();
        assert!(err.contains("line 1"), "{err}");
    }

    #[test]
    fn sealed_cluster_files_verify_and_unseal() {
        let clusters = sample_clusters();
        let sealed = dar_durable::seal(&write_clusters(&clusters).unwrap(), 0);
        assert_eq!(read_clusters(&sealed).unwrap(), clusters);
        // Damage under the seal is caught by the checksum, with a footer
        // diagnosis rather than a confusing parse error.
        let tampered = sealed.replacen("cluster id", "cluster xd", 1);
        let err = read_clusters(&tampered).unwrap_err().to_string();
        assert!(err.contains("footer"), "{err}");
    }

    #[test]
    fn roundtrip_is_lossless_for_arbitrary_clusters() {
        use proptest::prelude::*;
        // Arbitrary multi-set layouts (1–3 sets, fixed dims per slot) and
        // arbitrary cluster multisets — including the empty file and the
        // single-cluster file — must survive write → read exactly.
        let dims_pool = [2usize, 1, 3];
        proptest!(|(
            sets in 1usize..4,
            cluster_rows in prop::collection::vec(
                prop::collection::vec((-1.0e6f64..1.0e6, 1.0e-3f64..1.0e3, -50.0f64..50.0), 1..5),
                0..5,
            ),
        )| {
            let dims: Vec<usize> = dims_pool[..sets].to_vec();
            let layout = AcfLayout::new(dims.clone());
            let clusters: Vec<ClusterSummary> = cluster_rows
                .iter()
                .enumerate()
                .map(|(i, rows)| {
                    let set = i % sets;
                    let mut acf = Acf::empty(&layout, set);
                    for &(a, b, c) in rows {
                        let vals = [a, b, c];
                        let row: Vec<Vec<f64>> = dims
                            .iter()
                            .enumerate()
                            .map(|(s, &d)| (0..d).map(|j| vals[(s + j) % 3]).collect())
                            .collect();
                        acf.add_row(&row);
                    }
                    ClusterSummary { id: ClusterId(i as u32 * 7 + 1), set, acf }
                })
                .collect();
            let text = write_clusters(&clusters).unwrap();
            prop_assert_eq!(read_clusters(&text).unwrap(), clusters);
        });
    }

    #[test]
    fn phase2_from_persisted_clusters_matches() {
        use crate::clique::maximal_cliques;
        use crate::graph::{ClusterDistance, ClusteringGraph, GraphConfig};
        let clusters = sample_clusters();
        let text = write_clusters(&clusters).unwrap();
        let reloaded = read_clusters(&text).unwrap();
        let cfg = GraphConfig {
            metric: ClusterDistance::D2,
            density_thresholds: vec![100.0, 100.0],
            prune_poor_density: false,
        };
        let g1 = ClusteringGraph::build(clusters, &cfg);
        let g2 = ClusteringGraph::build(reloaded, &cfg);
        assert_eq!(g1.edges, g2.edges);
        assert_eq!(maximal_cliques(g1.adjacency(), 0), maximal_cliques(g2.adjacency(), 0));
    }
}
