//! Cluster-summary persistence: save Phase I output, re-run Phase II later.
//!
//! The whole point of ACFs is that Phase II needs *only* the summaries
//! (Theorem 6.1). Persisting them separates the expensive single data scan
//! from the cheap, re-tunable rule search — mine once, then sweep density
//! and degree thresholds offline without touching the data again.
//!
//! Two formats share one reader ([`decode_clusters`] sniffs the first
//! bytes):
//!
//! **v2 (binary, the writer)** — a length-prefixed little-endian record
//! stream. All writers emit v2; floats travel as raw `f64` bits, so a
//! save/load cycle is exact and costs no formatting:
//!
//! ```text
//! magic "DACF" | version u32=2 | sets u32 | dims u32×sets | count u64
//! per cluster: len u32 | id u32 | set u32 | n u64
//!              | bbox_n u32 | (lo f64, hi f64)×bbox_n
//!              | per set: ls f64×dims[s], ss f64×dims[s]
//! terminator 0x0A
//! ```
//!
//! The per-record length prefix lets the reader scan record spans without
//! decoding, so encode *and* decode fan records across the `dar-par` pool
//! in input order — output is byte-identical at any worker count. The
//! trailing newline keeps the `dar-durable` checksum footer on its own
//! line, unchanged from v1 sealing.
//!
//! **v1 (text, read compat)** — the original line-oriented format with
//! shortest-roundtrip float formatting. [`write_clusters`] is retained
//! for fixtures and migration tests; snapshots written before v2 shipped
//! keep restoring:
//!
//! ```text
//! acf-clusters v1 sets=<k> dims=<d0,d1,…>
//! cluster id=<u32> set=<usize> n=<u64>
//! bbox <lo> <hi> [<lo> <hi> …]
//! image <set> ls=<v,…> ss=<v,…>
//! (one image line per set, then the next cluster)
//! ```

use dar_core::{Acf, BoundingBox, Cf, ClusterId, ClusterSummary, CoreError, Interval};
use std::fmt::Write as _;

/// The first four bytes of every v2 binary cluster body.
pub const V2_MAGIC: [u8; 4] = *b"DACF";
/// The format version the v2 header carries.
pub const V2_VERSION: u32 = 2;
/// Records per pool task when encoding/decoding v2 bodies.
const RECORD_CHUNK: usize = 64;

/// Serializes cluster summaries (all sharing one layout) to the text
/// format. Returns an error if the clusters disagree on the number of
/// sets.
pub fn write_clusters(clusters: &[ClusterSummary]) -> Result<String, CoreError> {
    let Some(first) = clusters.first() else {
        return Ok("acf-clusters v1 sets=0 dims=\n".to_string());
    };
    let num_sets = first.acf.num_sets();
    let dims: Vec<String> = (0..num_sets).map(|s| first.acf.image(s).dims().to_string()).collect();
    let mut out = format!("acf-clusters v1 sets={num_sets} dims={}\n", dims.join(","));
    for c in clusters {
        if c.acf.num_sets() != num_sets {
            return Err(CoreError::LayoutMismatch(format!(
                "cluster {} has {} sets, expected {num_sets}",
                c.id,
                c.acf.num_sets()
            )));
        }
        let _ = writeln!(out, "cluster id={} set={} n={}", c.id.0, c.set, c.support());
        let _ = write!(out, "bbox");
        for iv in c.bbox().intervals() {
            let _ = write!(out, " {:?} {:?}", iv.lo, iv.hi);
        }
        out.push('\n');
        for s in 0..num_sets {
            let cf = c.acf.image(s);
            let ls: Vec<String> = cf.linear_sum().iter().map(|v| format!("{v:?}")).collect();
            let ss: Vec<String> = cf.square_sum().iter().map(|v| format!("{v:?}")).collect();
            let _ = writeln!(out, "image {s} ls={} ss={}", ls.join(","), ss.join(","));
        }
    }
    Ok(out)
}

/// Parses the text format back into cluster summaries. Sealed files (a
/// trailing `dar-durable` checksum footer) are verified and unsealed
/// first; unsealed files parse as before. Parse errors name the offending
/// line (1-based within `text`).
pub fn read_clusters(text: &str) -> Result<Vec<ClusterSummary>, CoreError> {
    read_clusters_at(text, 1)
}

/// Like [`read_clusters`], but error line numbers start at `first_line` —
/// for callers embedding the cluster body inside a larger file (the
/// engine snapshot format), so errors point into the enclosing file.
pub fn read_clusters_at(text: &str, first_line: usize) -> Result<Vec<ClusterSummary>, CoreError> {
    let body = dar_durable::unseal(text)
        .map_err(|detail| CoreError::LayoutMismatch(format!("cluster file footer: {detail}")))?
        .0;
    // `at` converts a 0-based index into `body` to the caller's line
    // numbering; errors from the keyed-field helpers get it prepended.
    let at = |idx: usize| idx + first_line;
    let located = |idx: usize, e: CoreError| match e {
        CoreError::LayoutMismatch(msg) => {
            CoreError::LayoutMismatch(format!("line {}: {msg}", at(idx)))
        }
        other => other,
    };
    let mut lines = body.lines().enumerate();
    let (_, header) = lines
        .next()
        .ok_or_else(|| CoreError::LayoutMismatch(format!("line {}: empty cluster file", at(0))))?;
    let num_sets: usize = field(header, "sets=")
        .and_then(|v| {
            v.parse().map_err(|_| CoreError::LayoutMismatch(format!("bad sets= field {v:?}")))
        })
        .map_err(|e| located(0, e))?;

    let mut out = Vec::new();
    while let Some((i, line)) = lines.next() {
        if line.trim().is_empty() {
            continue;
        }
        if !line.starts_with("cluster ") {
            return Err(CoreError::LayoutMismatch(format!(
                "line {}: expected cluster line, got {line:?}",
                at(i)
            )));
        }
        let id: u32 = parse_field(line, "id=").map_err(|e| located(i, e))?;
        let set: usize = parse_field(line, "set=").map_err(|e| located(i, e))?;
        let n: u64 = parse_field(line, "n=").map_err(|e| located(i, e))?;

        let (bi, bbox_line) = lines.next().ok_or_else(|| {
            CoreError::LayoutMismatch(format!("line {}: missing bbox line", at(i + 1)))
        })?;
        let nums: Vec<f64> = bbox_line
            .strip_prefix("bbox")
            .ok_or_else(|| {
                CoreError::LayoutMismatch(format!(
                    "line {}: expected bbox, got {bbox_line:?}",
                    at(bi)
                ))
            })?
            .split_whitespace()
            .map(|t| {
                t.parse::<f64>().map_err(|_| {
                    CoreError::LayoutMismatch(format!("line {}: bad bbox number {t:?}", at(bi)))
                })
            })
            .collect::<Result<_, _>>()?;
        let intervals: Vec<Interval> =
            nums.chunks(2).map(|c| Interval { lo: c[0], hi: c[1] }).collect();
        let bbox = BoundingBox::from_intervals(intervals);

        let mut images = Vec::with_capacity(num_sets);
        for expect in 0..num_sets {
            let (ii, img) = lines.next().ok_or_else(|| {
                CoreError::LayoutMismatch(format!("line {}: missing image line", at(bi + 1)))
            })?;
            let rest = img.strip_prefix("image ").ok_or_else(|| {
                CoreError::LayoutMismatch(format!(
                    "line {}: expected image line, got {img:?}",
                    at(ii)
                ))
            })?;
            let s: usize =
                rest.split_whitespace().next().and_then(|t| t.parse().ok()).ok_or_else(|| {
                    CoreError::LayoutMismatch(format!("line {}: bad image set index", at(ii)))
                })?;
            if s != expect {
                return Err(CoreError::LayoutMismatch(format!(
                    "line {}: image set {s} out of order (expected {expect})",
                    at(ii)
                )));
            }
            let ls = field(rest, "ls=").and_then(parse_floats).map_err(|e| located(ii, e))?;
            let ss = field(rest, "ss=").and_then(parse_floats).map_err(|e| located(ii, e))?;
            images.push(Cf::from_moments(n, ls, ss)?);
        }
        let acf = Acf::from_parts(set, images, bbox)?;
        out.push(ClusterSummary { id: ClusterId(id), set, acf });
    }
    Ok(out)
}

/// Serializes cluster summaries to the v2 binary format, fanning record
/// encoding across `pool` (records concatenate in input order, so the
/// output is byte-identical at any worker count). Returns an error if the
/// clusters disagree on the set/dimension layout.
pub fn encode_clusters(
    clusters: &[ClusterSummary],
    pool: &dar_par::ThreadPool,
) -> Result<Vec<u8>, CoreError> {
    let (num_sets, dims) = match clusters.first() {
        Some(first) => {
            let k = first.acf.num_sets();
            (k, (0..k).map(|s| first.acf.image(s).dims()).collect::<Vec<usize>>())
        }
        None => (0, Vec::new()),
    };
    for c in clusters {
        if c.acf.num_sets() != num_sets {
            return Err(CoreError::LayoutMismatch(format!(
                "cluster {} has {} sets, expected {num_sets}",
                c.id,
                c.acf.num_sets()
            )));
        }
        for (s, &d) in dims.iter().enumerate() {
            if c.acf.image(s).dims() != d {
                return Err(CoreError::LayoutMismatch(format!(
                    "cluster {} set {s} has {} dims, expected {d}",
                    c.id,
                    c.acf.image(s).dims()
                )));
            }
        }
    }
    // Fixed per-record payload given the shared layout; the bbox interval
    // count still varies (empty ACFs have no box), hence the length prefix.
    let moments = 16 * dims.iter().sum::<usize>();
    let mut out = Vec::with_capacity(24 + 4 * num_sets + clusters.len() * (36 + moments));
    out.extend_from_slice(&V2_MAGIC);
    out.extend_from_slice(&V2_VERSION.to_le_bytes());
    out.extend_from_slice(&(num_sets as u32).to_le_bytes());
    for &d in &dims {
        out.extend_from_slice(&(d as u32).to_le_bytes());
    }
    out.extend_from_slice(&(clusters.len() as u64).to_le_bytes());
    let records = pool.map_indexed("persist_encode", clusters.len(), RECORD_CHUNK, |i| {
        encode_record(&clusters[i])
    });
    for record in &records {
        out.extend_from_slice(record);
    }
    out.push(b'\n');
    Ok(out)
}

fn encode_record(c: &ClusterSummary) -> Vec<u8> {
    let bbox = c.bbox().intervals();
    let num_sets = c.acf.num_sets();
    let moments: usize = (0..num_sets).map(|s| 16 * c.acf.image(s).dims()).sum();
    let len = 20 + 16 * bbox.len() + moments;
    let mut rec = Vec::with_capacity(4 + len);
    rec.extend_from_slice(&(len as u32).to_le_bytes());
    rec.extend_from_slice(&c.id.0.to_le_bytes());
    rec.extend_from_slice(&(c.set as u32).to_le_bytes());
    rec.extend_from_slice(&c.support().to_le_bytes());
    rec.extend_from_slice(&(bbox.len() as u32).to_le_bytes());
    for iv in bbox {
        rec.extend_from_slice(&iv.lo.to_le_bytes());
        rec.extend_from_slice(&iv.hi.to_le_bytes());
    }
    for s in 0..num_sets {
        let cf = c.acf.image(s);
        for v in cf.linear_sum() {
            rec.extend_from_slice(&v.to_le_bytes());
        }
        for v in cf.square_sum() {
            rec.extend_from_slice(&v.to_le_bytes());
        }
    }
    debug_assert_eq!(rec.len(), 4 + len);
    rec
}

/// Parses a cluster body of either format: bytes opening with the
/// [`V2_MAGIC`] decode as v2 binary (records fanned across `pool`);
/// anything else must be UTF-8 and takes the v1 text path of
/// [`read_clusters`] (which also accepts sealed text files). The input is
/// the *body* — callers holding a `dar-durable`-sealed blob unseal first.
pub fn decode_clusters(
    bytes: &[u8],
    pool: &dar_par::ThreadPool,
) -> Result<Vec<ClusterSummary>, CoreError> {
    if !bytes.starts_with(&V2_MAGIC) {
        let text = std::str::from_utf8(bytes).map_err(|_| {
            CoreError::LayoutMismatch(
                "cluster bytes are neither v2 binary nor UTF-8 text".to_string(),
            )
        })?;
        return read_clusters(text);
    }
    let mut cur = Cursor { bytes, pos: V2_MAGIC.len() };
    let version = cur.u32("version")?;
    if version != V2_VERSION {
        return Err(CoreError::LayoutMismatch(format!(
            "unsupported acf-clusters binary version {version}"
        )));
    }
    let num_sets = cur.u32("sets")? as usize;
    if num_sets > cur.rest().len() / 4 {
        return Err(CoreError::LayoutMismatch(format!(
            "byte {}: set count {num_sets} exceeds what {} remaining bytes can hold",
            cur.pos,
            cur.rest().len()
        )));
    }
    let mut dims = Vec::with_capacity(num_sets);
    for s in 0..num_sets {
        dims.push(cur.u32(&format!("dims[{s}]"))? as usize);
    }
    let count = cur.u64("count")? as usize;
    // Sanity before allocating: every record needs at least its 4-byte
    // length prefix, so a count the remaining bytes cannot hold is
    // corruption, not a large file.
    if count > cur.rest().len() / 4 {
        return Err(CoreError::LayoutMismatch(format!(
            "byte {}: cluster count {count} exceeds what {} remaining bytes can hold",
            cur.pos,
            cur.rest().len()
        )));
    }
    // Serial span scan (length prefixes only), then pooled record decode.
    // Context is attached on the error path only — this loop and the
    // per-record field reads below are the decode hot path, and eager
    // `format!` labels would cost an allocation per field.
    let mut spans = Vec::with_capacity(count);
    for i in 0..count {
        let located = |e: CoreError| match e {
            CoreError::LayoutMismatch(msg) => {
                CoreError::LayoutMismatch(format!("record {i}: {msg}"))
            }
            other => other,
        };
        let len = cur.u32("record length").map_err(located)? as usize;
        let start = cur.pos;
        cur.skip(len, "record body").map_err(located)?;
        spans.push((start, len));
    }
    if cur.rest() != b"\n" {
        return Err(CoreError::LayoutMismatch(format!(
            "byte {}: expected the final newline terminator after {count} records, \
             found {} trailing bytes",
            cur.pos,
            cur.rest().len()
        )));
    }
    pool.map_indexed("persist_decode", count, RECORD_CHUNK, |i| {
        let (start, len) = spans[i];
        decode_record(&bytes[start..start + len], i, start, num_sets, &dims)
    })
    .into_iter()
    .collect()
}

fn decode_record(
    record: &[u8],
    index: usize,
    offset: usize,
    num_sets: usize,
    dims: &[usize],
) -> Result<ClusterSummary, CoreError> {
    decode_record_inner(record, num_sets, dims).map_err(|e| match e {
        CoreError::LayoutMismatch(msg) => {
            CoreError::LayoutMismatch(format!("record {index} at byte {offset}: {msg}"))
        }
        other => other,
    })
}

fn decode_record_inner(
    record: &[u8],
    num_sets: usize,
    dims: &[usize],
) -> Result<ClusterSummary, CoreError> {
    let mut cur = Cursor { bytes: record, pos: 0 };
    let id = cur.u32("id")?;
    let set = cur.u32("set")? as usize;
    let n = cur.u64("n")?;
    let bbox_n = cur.u32("bbox count")? as usize;
    // One length check pins the whole remaining layout; the f64 reads
    // below cannot run out of bytes after it.
    let moments: usize = 16 * dims.iter().sum::<usize>();
    let expect = 20 + 16 * bbox_n + moments;
    if record.len() != expect {
        return Err(CoreError::LayoutMismatch(format!(
            "length prefix pins {} bytes but the layout (bbox count {bbox_n}) \
             needs {expect}",
            record.len(),
        )));
    }
    let mut intervals = Vec::with_capacity(bbox_n);
    for _ in 0..bbox_n {
        let lo = cur.f64("bbox lo")?;
        let hi = cur.f64("bbox hi")?;
        intervals.push(Interval { lo, hi });
    }
    let bbox = BoundingBox::from_intervals(intervals);
    let mut images = Vec::with_capacity(num_sets);
    for &d in dims {
        let mut ls = Vec::with_capacity(d);
        for _ in 0..d {
            ls.push(cur.f64("image ls")?);
        }
        let mut ss = Vec::with_capacity(d);
        for _ in 0..d {
            ss.push(cur.f64("image ss")?);
        }
        images.push(Cf::from_moments(n, ls, ss)?);
    }
    let acf = Acf::from_parts(set, images, bbox)?;
    Ok(ClusterSummary { id: ClusterId(id), set, acf })
}

/// A bounds-checked little-endian reader; errors name the byte offset.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], CoreError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.bytes.len()).ok_or_else(|| {
            CoreError::LayoutMismatch(format!("byte {}: truncated reading {what}", self.pos))
        })?;
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn skip(&mut self, n: usize, what: &str) -> Result<(), CoreError> {
        self.take(n, what).map(|_| ())
    }

    fn u32(&mut self, what: &str) -> Result<u32, CoreError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self, what: &str) -> Result<u64, CoreError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().expect("8 bytes")))
    }

    fn f64(&mut self, what: &str) -> Result<f64, CoreError> {
        Ok(f64::from_le_bytes(self.take(8, what)?.try_into().expect("8 bytes")))
    }

    fn rest(&self) -> &'a [u8] {
        &self.bytes[self.pos..]
    }
}

/// Extracts the whitespace-terminated value of `key` inside `line`.
fn field<'a>(line: &'a str, key: &str) -> Result<&'a str, CoreError> {
    let start = line
        .find(key)
        .ok_or_else(|| CoreError::LayoutMismatch(format!("missing {key} in {line:?}")))?
        + key.len();
    let rest = &line[start..];
    Ok(rest.split_whitespace().next().unwrap_or(rest))
}

fn parse_field<T: std::str::FromStr>(line: &str, key: &str) -> Result<T, CoreError> {
    field(line, key)?
        .parse()
        .map_err(|_| CoreError::LayoutMismatch(format!("bad {key} field in {line:?}")))
}

fn parse_floats(csv: &str) -> Result<Vec<f64>, CoreError> {
    if csv.is_empty() {
        return Ok(Vec::new());
    }
    csv.split(',')
        .map(|t| {
            t.parse::<f64>().map_err(|_| CoreError::LayoutMismatch(format!("bad float {t:?}")))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dar_core::AcfLayout;

    fn sample_clusters() -> Vec<ClusterSummary> {
        let layout = AcfLayout::new(vec![1, 2]);
        let mut a = Acf::empty(&layout, 0);
        a.add_row(&[vec![1.5], vec![10.0, 0.25]]);
        a.add_row(&[vec![2.5], vec![11.0, 0.5]]);
        let mut b = Acf::empty(&layout, 1);
        b.add_row(&[vec![-3.125], vec![0.1, 0.2]]);
        vec![
            ClusterSummary { id: ClusterId(3), set: 0, acf: a },
            ClusterSummary { id: ClusterId(9), set: 1, acf: b },
        ]
    }

    #[test]
    fn roundtrip_is_lossless() {
        let clusters = sample_clusters();
        let text = write_clusters(&clusters).unwrap();
        let back = read_clusters(&text).unwrap();
        assert_eq!(clusters, back);
    }

    #[test]
    fn roundtrip_survives_awkward_floats() {
        let layout = AcfLayout::new(vec![1]);
        let mut a = Acf::empty(&layout, 0);
        a.add_row(&[vec![0.1 + 0.2]]); // classic non-representable sum
        a.add_row(&[vec![1e-300]]);
        a.add_row(&[vec![-123456.789012345]]);
        let clusters = vec![ClusterSummary { id: ClusterId(0), set: 0, acf: a }];
        let text = write_clusters(&clusters).unwrap();
        assert_eq!(read_clusters(&text).unwrap(), clusters);
    }

    #[test]
    fn empty_set_roundtrips() {
        let text = write_clusters(&[]).unwrap();
        assert!(read_clusters(&text).unwrap().is_empty());
    }

    #[test]
    fn malformed_inputs_error_cleanly() {
        assert!(read_clusters("").is_err());
        assert!(read_clusters("acf-clusters v1 sets=x dims=").is_err());
        let good = write_clusters(&sample_clusters()).unwrap();
        // Truncate mid-cluster.
        let truncated: String = good.lines().take(2).collect::<Vec<_>>().join("\n");
        assert!(read_clusters(&truncated).is_err());
        // Corrupt a float.
        let corrupt = good.replace("ls=", "ls=oops,");
        assert!(read_clusters(&corrupt).is_err());
    }

    #[test]
    fn errors_name_the_offending_line() {
        let good = write_clusters(&sample_clusters()).unwrap();
        // Header, cluster, bbox, then the first image line: line 4.
        let bad = good.replace("ls=", "ls=oops,");
        let err = read_clusters(&bad).unwrap_err().to_string();
        assert!(err.contains("line 4"), "{err}");
        // Embedded numbering shifts the report by the caller's offset.
        let err = read_clusters_at(&bad, 10).unwrap_err().to_string();
        assert!(err.contains("line 13"), "{err}");
        let err = read_clusters("acf-clusters v1 sets=x dims=").unwrap_err().to_string();
        assert!(err.contains("line 1"), "{err}");
    }

    #[test]
    fn sealed_cluster_files_verify_and_unseal() {
        let clusters = sample_clusters();
        let sealed = dar_durable::seal(&write_clusters(&clusters).unwrap(), 0);
        assert_eq!(read_clusters(&sealed).unwrap(), clusters);
        // Damage under the seal is caught by the checksum, with a footer
        // diagnosis rather than a confusing parse error.
        let tampered = sealed.replacen("cluster id", "cluster xd", 1);
        let err = read_clusters(&tampered).unwrap_err().to_string();
        assert!(err.contains("footer"), "{err}");
    }

    #[test]
    fn roundtrip_is_lossless_for_arbitrary_clusters() {
        use proptest::prelude::*;
        // Arbitrary multi-set layouts (1–3 sets, fixed dims per slot) and
        // arbitrary cluster multisets — including the empty file and the
        // single-cluster file — must survive write → read exactly.
        let dims_pool = [2usize, 1, 3];
        proptest!(|(
            sets in 1usize..4,
            cluster_rows in prop::collection::vec(
                prop::collection::vec((-1.0e6f64..1.0e6, 1.0e-3f64..1.0e3, -50.0f64..50.0), 1..5),
                0..5,
            ),
        )| {
            let dims: Vec<usize> = dims_pool[..sets].to_vec();
            let layout = AcfLayout::new(dims.clone());
            let clusters: Vec<ClusterSummary> = cluster_rows
                .iter()
                .enumerate()
                .map(|(i, rows)| {
                    let set = i % sets;
                    let mut acf = Acf::empty(&layout, set);
                    for &(a, b, c) in rows {
                        let vals = [a, b, c];
                        let row: Vec<Vec<f64>> = dims
                            .iter()
                            .enumerate()
                            .map(|(s, &d)| (0..d).map(|j| vals[(s + j) % 3]).collect())
                            .collect();
                        acf.add_row(&row);
                    }
                    ClusterSummary { id: ClusterId(i as u32 * 7 + 1), set, acf }
                })
                .collect();
            let text = write_clusters(&clusters).unwrap();
            prop_assert_eq!(read_clusters(&text).unwrap(), clusters);
        });
    }

    #[test]
    fn v2_roundtrip_is_lossless() {
        let pool = dar_par::ThreadPool::serial();
        let clusters = sample_clusters();
        let bytes = encode_clusters(&clusters, &pool).unwrap();
        assert_eq!(&bytes[..4], &V2_MAGIC);
        assert_eq!(*bytes.last().unwrap(), b'\n');
        assert_eq!(decode_clusters(&bytes, &pool).unwrap(), clusters);
        // Empty set, awkward floats.
        let empty = encode_clusters(&[], &pool).unwrap();
        assert!(decode_clusters(&empty, &pool).unwrap().is_empty());
        let layout = AcfLayout::new(vec![1]);
        let mut a = Acf::empty(&layout, 0);
        a.add_row(&[vec![0.1 + 0.2]]);
        a.add_row(&[vec![1e-300]]);
        a.add_row(&[vec![-123456.789012345]]);
        let awkward = vec![ClusterSummary { id: ClusterId(0), set: 0, acf: a }];
        let bytes = encode_clusters(&awkward, &pool).unwrap();
        assert_eq!(decode_clusters(&bytes, &pool).unwrap(), awkward);
    }

    #[test]
    fn v2_bytes_identical_at_every_worker_count() {
        let clusters: Vec<ClusterSummary> = {
            let layout = AcfLayout::new(vec![1, 2]);
            (0..200)
                .map(|i| {
                    let set = i % 2;
                    let mut acf = Acf::empty(&layout, set);
                    acf.add_row(&[vec![i as f64 * 0.5], vec![i as f64, -(i as f64)]]);
                    ClusterSummary { id: ClusterId(i as u32), set, acf }
                })
                .collect()
        };
        let serial = encode_clusters(&clusters, &dar_par::ThreadPool::serial()).unwrap();
        for workers in [2, 4, 8] {
            let pool = dar_par::ThreadPool::new(workers);
            assert_eq!(encode_clusters(&clusters, &pool).unwrap(), serial, "workers={workers}");
            assert_eq!(decode_clusters(&serial, &pool).unwrap(), clusters, "workers={workers}");
        }
    }

    #[test]
    fn decode_sniffs_v1_text_and_sealed_v1_text() {
        let pool = dar_par::ThreadPool::serial();
        let clusters = sample_clusters();
        let text = write_clusters(&clusters).unwrap();
        assert_eq!(decode_clusters(text.as_bytes(), &pool).unwrap(), clusters);
        let sealed = dar_durable::seal(&text, 9);
        assert_eq!(decode_clusters(sealed.as_bytes(), &pool).unwrap(), clusters);
        // Non-UTF-8 bytes that are not v2 diagnose cleanly.
        let err = decode_clusters(&[0xff, 0xfe, 0x00], &pool).unwrap_err().to_string();
        assert!(err.contains("neither"), "{err}");
        // A bad version is rejected, not misparsed.
        let mut bad = encode_clusters(&clusters, &pool).unwrap();
        bad[4] = 9;
        let err = decode_clusters(&bad, &pool).unwrap_err().to_string();
        assert!(err.contains("version"), "{err}");
    }

    #[test]
    fn v2_truncated_at_every_byte_offset_is_rejected() {
        let pool = dar_par::ThreadPool::serial();
        let bytes = encode_clusters(&sample_clusters(), &pool).unwrap();
        for cut in 0..bytes.len() {
            assert!(
                decode_clusters(&bytes[..cut], &pool).is_err(),
                "decode accepted a truncation at byte {cut}/{}",
                bytes.len()
            );
        }
        // Trailing garbage after the terminator is also rejected.
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(decode_clusters(&padded, &pool).is_err());
    }

    #[test]
    fn v2_roundtrip_is_lossless_for_arbitrary_clusters() {
        use proptest::prelude::*;
        let dims_pool = [2usize, 1, 3];
        let pool = dar_par::ThreadPool::new(3);
        proptest!(|(
            sets in 1usize..4,
            cluster_rows in prop::collection::vec(
                prop::collection::vec(
                    (-1.0e18f64..1.0e18, 1.0e-12f64..1.0e12, -50.0f64..50.0),
                    1..5,
                ),
                0..6,
            ),
        )| {
            let dims: Vec<usize> = dims_pool[..sets].to_vec();
            let layout = AcfLayout::new(dims.clone());
            let clusters: Vec<ClusterSummary> = cluster_rows
                .iter()
                .enumerate()
                .map(|(i, rows)| {
                    let set = i % sets;
                    let mut acf = Acf::empty(&layout, set);
                    for &(a, b, c) in rows {
                        let vals = [a, b, c];
                        let row: Vec<Vec<f64>> = dims
                            .iter()
                            .enumerate()
                            .map(|(s, &d)| (0..d).map(|j| vals[(s + j) % 3]).collect())
                            .collect();
                        acf.add_row(&row);
                    }
                    ClusterSummary { id: ClusterId(i as u32 * 7 + 1), set, acf }
                })
                .collect();
            let bytes = encode_clusters(&clusters, &pool).unwrap();
            prop_assert_eq!(decode_clusters(&bytes, &pool).unwrap(), clusters);
        });
    }

    #[test]
    fn phase2_from_persisted_clusters_matches() {
        use crate::clique::maximal_cliques;
        use crate::graph::{ClusterDistance, ClusteringGraph, GraphConfig};
        let clusters = sample_clusters();
        let text = write_clusters(&clusters).unwrap();
        let reloaded = read_clusters(&text).unwrap();
        let cfg = GraphConfig {
            metric: ClusterDistance::D2,
            density_thresholds: vec![100.0, 100.0],
            prune_poor_density: false,
        };
        let g1 = ClusteringGraph::build(clusters, &cfg);
        let g2 = ClusteringGraph::build(reloaded, &cfg);
        assert_eq!(g1.edges, g2.edges);
        assert_eq!(maximal_cliques(g1.adjacency(), 0), maximal_cliques(g2.adjacency(), 0));
    }
}
