//! # dar-engine
//!
//! A **long-lived incremental mining engine** over the two-phase DAR
//! pipeline. Where [`mining::DarMiner`] is one-shot — scan, cluster, graph,
//! rules, done — this crate keeps the Phase I state alive between requests
//! and exploits Theorem 6.1 (Phase II is a function of the ACF summaries
//! alone) to make everything after the scan incremental, snapshottable and
//! cacheable:
//!
//! * **Incremental ingest** ([`DarEngine::ingest`]): tuple batches feed the
//!   per-set adaptive [`birch::AcfForest`] without restarting Phase I — ACF
//!   additivity (Equation 7) means a batch arriving later lands in exactly
//!   the state a single concatenated scan would have produced.
//! * **Epoch snapshots** ([`DarEngine::snapshot`] / [`DarEngine::restore`]):
//!   the engine closes an *epoch* by extracting cluster summaries from the
//!   live forest (without consuming it) and can persist them — header plus
//!   the `mining::persist` v1 body — so a process restart resumes from the
//!   last epoch instead of rescanning history.
//! * **Cached Phase II** ([`DarEngine::query`]): the expensive clustering
//!   graph + maximal cliques ([`mining::Phase2Artifacts`]) are memoized per
//!   density setting per epoch; re-tuned queries (different `D0`, arity,
//!   rule budgets) are answered from the cache without re-enumerating
//!   cliques. Ingest invalidates the epoch and its cache.
//! * **Observability** ([`EngineStats`]): tuples/batches ingested, epochs
//!   closed, forest rebuilds, cache hits/misses, per-phase timings.
//!
//! See `DESIGN.md` ("Engine lifecycle") for the mapping of this lifecycle
//! onto the paper's Theorem 6.1 and Section 6.2.
//!
//! ```
//! use dar_engine::{DarEngine, EngineConfig};
//! use dar_core::{Metric, Partitioning, Schema};
//! use mining::RuleQuery;
//!
//! let schema = Schema::interval_attrs(2);
//! let partitioning = Partitioning::per_attribute(&schema, Metric::Euclidean);
//! let mut config = EngineConfig::default();
//! config.birch.initial_threshold = 1.0;
//! config.min_support_frac = 0.2;
//! let mut engine = DarEngine::new(partitioning, config).unwrap();
//!
//! // Two batches, same two value blocks.
//! for batch in 0..2 {
//!     let rows: Vec<Vec<f64>> = (0..30)
//!         .map(|i| {
//!             let block = if (i + batch) % 2 == 0 { 0.0 } else { 50.0 };
//!             vec![block, block + 10.0]
//!         })
//!         .collect();
//!     engine.ingest(&rows).unwrap();
//! }
//!
//! let outcome = engine.query(&RuleQuery::default()).unwrap();
//! assert!(!outcome.cached, "first query builds the graph");
//! let again = engine
//!     .query(&RuleQuery { degree_factor: 3.0, ..RuleQuery::default() })
//!     .unwrap();
//! assert!(again.cached, "re-tuned D0 reuses the cached cliques");
//! assert_eq!(engine.stats().cache_hits, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod engine;
mod metrics;
pub mod snapshot;
mod stats;

pub use config::EngineConfig;
pub use engine::{DarEngine, QueryOutcome};
pub use stats::EngineStats;
