//! Engine observability counters.

use std::time::Duration;

/// Cumulative counters and timings over the engine's lifetime.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EngineStats {
    /// Total tuples ingested (including those replayed from a snapshot).
    pub tuples_ingested: u64,
    /// Ingest batches accepted.
    pub batches: u64,
    /// Ingest batches rejected by validation (ragged row width or
    /// non-finite values) before touching the forest.
    pub rejected_batches: u64,
    /// Epochs closed (cluster extractions from the live forest).
    pub epochs: u64,
    /// Ingest batches applied from write-ahead-log replay during crash
    /// recovery (each also counts in [`EngineStats::batches`]).
    pub wal_batches_replayed: u64,
    /// Phase I tree rebuilds across all sets so far (threshold raises under
    /// memory pressure).
    pub forest_rebuilds: usize,
    /// Queries answered.
    pub queries: u64,
    /// Queries answered from a cached clustering graph + clique set.
    pub cache_hits: u64,
    /// Queries that had to build Phase II artifacts.
    pub cache_misses: u64,
    /// Time spent ingesting tuples into the forest (incremental Phase I).
    pub ingest_time: Duration,
    /// Time spent closing epochs (cluster extraction + refinement).
    pub epoch_time: Duration,
    /// Time spent building Phase II artifacts (graph + cliques) on cache
    /// misses.
    pub phase2_build_time: Duration,
    /// Time spent generating rules from artifacts (both hit and miss
    /// paths).
    pub rule_time: Duration,
}

impl EngineStats {
    /// Fraction of queries served from cache, or 0.0 before any query.
    pub fn cache_hit_rate(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.queries as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_handles_zero_queries() {
        assert_eq!(EngineStats::default().cache_hit_rate(), 0.0);
        let s = EngineStats { queries: 4, cache_hits: 3, ..EngineStats::default() };
        assert!((s.cache_hit_rate() - 0.75).abs() < 1e-12);
    }
}
