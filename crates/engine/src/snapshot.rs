//! Epoch snapshot serialization: an engine header wrapped around the
//! `mining::persist` cluster body.
//!
//! Two formats. Writers emit the v2 binary layout; readers sniff the
//! leading bytes and accept both, so pre-v2 snapshot files stay
//! restorable.
//!
//! v1 text (read-only now):
//!
//! ```text
//! dar-engine v1 epoch=<u64> tuples=<u64> sets=<k>
//! set <metric> <attr,attr,…>     (one line per attribute set, in order)
//! thresholds <t,…>               (per-set tree thresholds at extraction)
//! acf-clusters v1 …              (the persist v1 body, verbatim)
//! ```
//!
//! v2 binary (all integers and floats little-endian):
//!
//! ```text
//! magic "DARS" | version u32=2 | epoch u64 | tuples u64 | num_sets u32
//! per set: metric u8 | attr_count u32 | attr u32 × attr_count
//! threshold f64 × num_sets
//! <mining::persist v2 cluster body, verbatim>   (ends with the 0x0A
//!                                                format terminator)
//! ```
//!
//! Both formats round-trip floats bit-exactly (v1 via shortest-roundtrip
//! text, v2 via raw IEEE-754 bytes), and both end with a newline byte so
//! the `dar-durable` seal footer never has to alter the body.

use dar_core::{AttrSet, ClusterSummary, CoreError, Metric, Partitioning, Schema};
use mining::persist::{decode_clusters, encode_clusters, read_clusters_at, write_clusters};
use std::fmt::Write as _;

/// The v2 binary engine-snapshot magic.
pub const V2_MAGIC: [u8; 4] = *b"DARS";

/// The v2 binary engine-snapshot version field.
pub const V2_VERSION: u32 = 2;

/// A parsed snapshot, ready to install into an engine. Public so the
/// sliding-window layer (`dar-stream`) can embed per-window engine
/// snapshots inside its own ring serialization, and so the cluster
/// coordinator can cache parsed shard snapshots across merges.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// The epoch the snapshot captured.
    pub epoch: u64,
    /// Tuples the snapshotted engine had ingested.
    pub tuples: u64,
    /// The partitioning the engine mined under.
    pub partitioning: Partitioning,
    /// Per-set tree thresholds at extraction time.
    pub thresholds: Vec<f64>,
    /// The epoch's cluster summaries.
    pub clusters: Vec<ClusterSummary>,
}

fn metric_name(metric: Metric) -> &'static str {
    match metric {
        Metric::Euclidean => "euclidean",
        Metric::Manhattan => "manhattan",
        Metric::Chebyshev => "chebyshev",
        Metric::Discrete => "discrete",
    }
}

fn parse_metric(name: &str) -> Result<Metric, CoreError> {
    match name {
        "euclidean" => Ok(Metric::Euclidean),
        "manhattan" => Ok(Metric::Manhattan),
        "chebyshev" => Ok(Metric::Chebyshev),
        "discrete" => Ok(Metric::Discrete),
        other => Err(CoreError::LayoutMismatch(format!("unknown metric {other:?}"))),
    }
}

fn metric_code(metric: Metric) -> u8 {
    match metric {
        Metric::Euclidean => 0,
        Metric::Manhattan => 1,
        Metric::Chebyshev => 2,
        Metric::Discrete => 3,
    }
}

fn parse_metric_code(code: u8) -> Result<Metric, CoreError> {
    match code {
        0 => Ok(Metric::Euclidean),
        1 => Ok(Metric::Manhattan),
        2 => Ok(Metric::Chebyshev),
        3 => Ok(Metric::Discrete),
        other => Err(CoreError::LayoutMismatch(format!("unknown metric code {other}"))),
    }
}

/// Serializes one epoch to the v1 text format. Kept for migration
/// fixtures and tests; live writers use [`write_snapshot_bytes`].
///
/// # Errors
/// Propagates serialization failures from the cluster body writer.
pub fn write_snapshot(
    epoch: u64,
    tuples: u64,
    partitioning: &Partitioning,
    thresholds: &[f64],
    clusters: &[ClusterSummary],
) -> Result<String, CoreError> {
    let mut out =
        format!("dar-engine v1 epoch={epoch} tuples={tuples} sets={}\n", partitioning.num_sets());
    for set in partitioning.sets() {
        let attrs: Vec<String> = set.attrs.iter().map(|a| a.to_string()).collect();
        let _ = writeln!(out, "set {} {}", metric_name(set.metric), attrs.join(","));
    }
    let t: Vec<String> = thresholds.iter().map(|v| format!("{v:?}")).collect();
    let _ = writeln!(out, "thresholds {}", t.join(","));
    out.push_str(&write_clusters(clusters)?);
    Ok(out)
}

/// Parses a snapshot back. The schema is synthesized from the highest
/// attribute id the partitioning mentions (the snapshot stores no attribute
/// names; the engine only needs the id space). Parse errors name the
/// offending line, counted from the start of the snapshot text.
pub fn parse_snapshot(text: &str) -> Result<Snapshot, CoreError> {
    let located = |line_no: usize, e: CoreError| match e {
        CoreError::LayoutMismatch(msg) => {
            CoreError::LayoutMismatch(format!("line {line_no}: {msg}"))
        }
        other => other,
    };
    let mut lines = text.lines().enumerate().map(|(i, l)| (i + 1, l));
    let (_, header) =
        lines.next().ok_or_else(|| CoreError::LayoutMismatch("line 1: empty snapshot".into()))?;
    if !header.starts_with("dar-engine v1 ") {
        return Err(CoreError::LayoutMismatch(format!(
            "line 1: not a dar-engine v1 snapshot: {header:?}"
        )));
    }
    let epoch: u64 = header_field(header, "epoch=").map_err(|e| located(1, e))?;
    let tuples: u64 = header_field(header, "tuples=").map_err(|e| located(1, e))?;
    let num_sets: usize = header_field(header, "sets=").map_err(|e| located(1, e))?;

    let mut sets = Vec::with_capacity(num_sets);
    for expect in 0..num_sets {
        let (n, line) = lines.next().ok_or_else(|| {
            CoreError::LayoutMismatch(format!("line {}: missing set line", expect + 2))
        })?;
        let rest = line.strip_prefix("set ").ok_or_else(|| {
            CoreError::LayoutMismatch(format!("line {n}: expected set line, got {line:?}"))
        })?;
        let mut parts = rest.split_whitespace();
        let metric = parse_metric(parts.next().unwrap_or("")).map_err(|e| located(n, e))?;
        let attrs_csv = parts.next().ok_or_else(|| {
            CoreError::LayoutMismatch(format!("line {n}: set line missing attrs: {line:?}"))
        })?;
        let attrs: Vec<usize> = attrs_csv
            .split(',')
            .map(|t| {
                t.parse().map_err(|_| {
                    CoreError::LayoutMismatch(format!("line {n}: bad attribute id {t:?}"))
                })
            })
            .collect::<Result<_, _>>()?;
        sets.push(AttrSet { attrs, metric });
    }
    let max_attr = sets.iter().flat_map(|s| s.attrs.iter()).copied().max().map_or(0, |m| m + 1);
    let schema = Schema::interval_attrs(max_attr);
    let partitioning = Partitioning::new(&schema, sets)?;

    let (tn, t_line) = lines.next().ok_or_else(|| {
        CoreError::LayoutMismatch(format!("line {}: missing thresholds line", num_sets + 2))
    })?;
    let t_csv = t_line.strip_prefix("thresholds ").ok_or_else(|| {
        CoreError::LayoutMismatch(format!("line {tn}: expected thresholds line, got {t_line:?}"))
    })?;
    let thresholds: Vec<f64> = t_csv
        .split(',')
        .map(|t| {
            t.parse()
                .map_err(|_| CoreError::LayoutMismatch(format!("line {tn}: bad threshold {t:?}")))
        })
        .collect::<Result<_, _>>()?;
    if thresholds.len() != num_sets {
        return Err(CoreError::LayoutMismatch(format!(
            "line {tn}: snapshot has {} thresholds for {num_sets} sets",
            thresholds.len()
        )));
    }

    let body_start = text
        .find("acf-clusters v1")
        .ok_or_else(|| CoreError::LayoutMismatch("snapshot missing cluster body".into()))?;
    // Body errors get absolute line numbers within the snapshot text.
    let body_first_line = text[..body_start].matches('\n').count() + 1;
    let clusters = read_clusters_at(&text[body_start..], body_first_line)?;
    Ok(Snapshot { epoch, tuples, partitioning, thresholds, clusters })
}

/// Serializes one epoch to the v2 binary format, fanning the cluster
/// body encode across `pool`. Output is byte-identical at any worker
/// count and always ends with the format's `0x0A` terminator.
///
/// # Errors
/// Propagates layout errors from the cluster body encoder.
pub fn write_snapshot_bytes(
    epoch: u64,
    tuples: u64,
    partitioning: &Partitioning,
    thresholds: &[f64],
    clusters: &[ClusterSummary],
    pool: &dar_par::ThreadPool,
) -> Result<Vec<u8>, CoreError> {
    let mut out = Vec::with_capacity(64 + 8 * thresholds.len());
    out.extend_from_slice(&V2_MAGIC);
    out.extend_from_slice(&V2_VERSION.to_le_bytes());
    out.extend_from_slice(&epoch.to_le_bytes());
    out.extend_from_slice(&tuples.to_le_bytes());
    out.extend_from_slice(&(partitioning.num_sets() as u32).to_le_bytes());
    for set in partitioning.sets() {
        out.push(metric_code(set.metric));
        out.extend_from_slice(&(set.attrs.len() as u32).to_le_bytes());
        for &attr in &set.attrs {
            out.extend_from_slice(&(attr as u32).to_le_bytes());
        }
    }
    for &t in thresholds {
        out.extend_from_slice(&t.to_le_bytes());
    }
    out.extend_from_slice(&encode_clusters(clusters, pool)?);
    Ok(out)
}

/// Parses a snapshot body of either format: bytes opening with
/// [`V2_MAGIC`] take the binary path (cluster records fanned across
/// `pool`); anything else must be UTF-8 and parses as v1 text. The input
/// is the *body* — callers holding a sealed blob unseal first.
pub fn parse_snapshot_bytes(
    bytes: &[u8],
    pool: &dar_par::ThreadPool,
) -> Result<Snapshot, CoreError> {
    if !bytes.starts_with(&V2_MAGIC) {
        let text = std::str::from_utf8(bytes).map_err(|_| {
            CoreError::LayoutMismatch(
                "snapshot bytes are neither dar-engine v2 binary nor UTF-8 text".to_string(),
            )
        })?;
        return parse_snapshot(text);
    }
    let mut cur = ByteCursor { bytes, pos: V2_MAGIC.len() };
    let version = cur.u32("version")?;
    if version != V2_VERSION {
        return Err(CoreError::LayoutMismatch(format!(
            "unsupported dar-engine binary version {version}"
        )));
    }
    let epoch = cur.u64("epoch")?;
    let tuples = cur.u64("tuples")?;
    let num_sets = cur.u32("sets")? as usize;
    if num_sets > cur.rest() / 8 {
        return Err(CoreError::LayoutMismatch(format!(
            "byte {}: set count {num_sets} exceeds what {} remaining bytes can hold",
            cur.pos,
            cur.rest()
        )));
    }
    let mut sets = Vec::with_capacity(num_sets);
    for s in 0..num_sets {
        let metric = parse_metric_code(cur.u8(&format!("set[{s}] metric"))?)?;
        let attr_count = cur.u32(&format!("set[{s}] attr count"))? as usize;
        if attr_count > cur.rest() / 4 {
            return Err(CoreError::LayoutMismatch(format!(
                "byte {}: set {s} attr count {attr_count} exceeds what {} remaining bytes can hold",
                cur.pos,
                cur.rest()
            )));
        }
        let mut attrs = Vec::with_capacity(attr_count);
        for a in 0..attr_count {
            attrs.push(cur.u32(&format!("set[{s}] attr[{a}]"))? as usize);
        }
        sets.push(AttrSet { attrs, metric });
    }
    let max_attr = sets.iter().flat_map(|s| s.attrs.iter()).copied().max().map_or(0, |m| m + 1);
    let schema = Schema::interval_attrs(max_attr);
    let partitioning = Partitioning::new(&schema, sets)?;
    let mut thresholds = Vec::with_capacity(num_sets);
    for s in 0..num_sets {
        thresholds.push(cur.f64(&format!("threshold[{s}]"))?);
    }
    let clusters = decode_clusters(&bytes[cur.pos..], pool)?;
    Ok(Snapshot { epoch, tuples, partitioning, thresholds, clusters })
}

/// A bounds-checked little-endian reader over the v2 header; errors name
/// the byte offset and the field being read.
struct ByteCursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl ByteCursor<'_> {
    fn rest(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&[u8], CoreError> {
        if self.rest() < n {
            return Err(CoreError::LayoutMismatch(format!(
                "byte {}: truncated reading {what} ({} bytes left, {n} needed)",
                self.pos,
                self.rest()
            )));
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self, what: &str) -> Result<u8, CoreError> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &str) -> Result<u32, CoreError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self, what: &str) -> Result<u64, CoreError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().expect("8 bytes")))
    }

    fn f64(&mut self, what: &str) -> Result<f64, CoreError> {
        Ok(f64::from_le_bytes(self.take(8, what)?.try_into().expect("8 bytes")))
    }
}

fn header_field<T: std::str::FromStr>(line: &str, key: &str) -> Result<T, CoreError> {
    let start = line
        .find(key)
        .ok_or_else(|| CoreError::LayoutMismatch(format!("missing {key} in {line:?}")))?
        + key.len();
    line[start..]
        .split_whitespace()
        .next()
        .unwrap_or("")
        .parse()
        .map_err(|_| CoreError::LayoutMismatch(format!("bad {key} field in {line:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dar_core::{Acf, AcfLayout, ClusterId};

    fn sample() -> (Partitioning, Vec<ClusterSummary>) {
        let schema = Schema::interval_attrs(3);
        let partitioning = Partitioning::new(
            &schema,
            vec![
                AttrSet { attrs: vec![0, 1], metric: Metric::Euclidean },
                AttrSet { attrs: vec![2], metric: Metric::Discrete },
            ],
        )
        .unwrap();
        let layout = AcfLayout::new(vec![2, 1]);
        let mut a = Acf::empty(&layout, 0);
        a.add_row(&[vec![1.0, 2.0], vec![0.5]]);
        a.add_row(&[vec![1.1, 2.2], vec![0.25]]);
        let mut b = Acf::empty(&layout, 1);
        b.add_row(&[vec![-1.0, 3.0], vec![7.0]]);
        let clusters = vec![
            ClusterSummary { id: ClusterId(0), set: 0, acf: a },
            ClusterSummary { id: ClusterId(1), set: 1, acf: b },
        ];
        (partitioning, clusters)
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let (partitioning, clusters) = sample();
        let text = write_snapshot(7, 1234, &partitioning, &[0.125, 3.5], &clusters).unwrap();
        let snap = parse_snapshot(&text).unwrap();
        assert_eq!(snap.epoch, 7);
        assert_eq!(snap.tuples, 1234);
        assert_eq!(snap.thresholds, vec![0.125, 3.5]);
        assert_eq!(snap.partitioning.num_sets(), 2);
        assert_eq!(snap.partitioning.set(0).attrs, vec![0, 1]);
        assert_eq!(snap.partitioning.set(0).metric, Metric::Euclidean);
        assert_eq!(snap.partitioning.set(1).metric, Metric::Discrete);
        assert_eq!(snap.clusters, clusters);
    }

    #[test]
    fn empty_epoch_roundtrips() {
        let (partitioning, _) = sample();
        let text = write_snapshot(1, 0, &partitioning, &[1.0, 1.0], &[]).unwrap();
        let snap = parse_snapshot(&text).unwrap();
        assert!(snap.clusters.is_empty());
        assert_eq!(snap.tuples, 0);
    }

    #[test]
    fn v2_roundtrip_preserves_everything() {
        let (partitioning, clusters) = sample();
        let pool = dar_par::ThreadPool::serial();
        let bytes =
            write_snapshot_bytes(7, 1234, &partitioning, &[0.125, 3.5], &clusters, &pool).unwrap();
        assert!(bytes.starts_with(&V2_MAGIC));
        assert_eq!(bytes.last(), Some(&b'\n'), "v2 bodies end with the format terminator");
        let snap = parse_snapshot_bytes(&bytes, &pool).unwrap();
        assert_eq!(snap.epoch, 7);
        assert_eq!(snap.tuples, 1234);
        assert_eq!(snap.thresholds, vec![0.125, 3.5]);
        assert_eq!(snap.partitioning, partitioning);
        assert_eq!(snap.clusters, clusters);
        // Byte-identical at any worker count.
        for workers in [2, 4, 8] {
            let wide = dar_par::ThreadPool::new(workers);
            let again =
                write_snapshot_bytes(7, 1234, &partitioning, &[0.125, 3.5], &clusters, &wide)
                    .unwrap();
            assert_eq!(again, bytes, "workers={workers}");
        }
    }

    #[test]
    fn v2_parser_sniffs_v1_text() {
        let (partitioning, clusters) = sample();
        let pool = dar_par::ThreadPool::serial();
        let text = write_snapshot(3, 99, &partitioning, &[1.0, 2.0], &clusters).unwrap();
        let snap = parse_snapshot_bytes(text.as_bytes(), &pool).unwrap();
        assert_eq!(snap.epoch, 3);
        assert_eq!(snap.tuples, 99);
        assert_eq!(snap.clusters, clusters);
    }

    #[test]
    fn v2_truncation_and_damage_are_rejected() {
        let (partitioning, clusters) = sample();
        let pool = dar_par::ThreadPool::serial();
        let bytes =
            write_snapshot_bytes(1, 10, &partitioning, &[1.0, 1.0], &clusters, &pool).unwrap();
        for cut in 0..bytes.len() {
            assert!(
                parse_snapshot_bytes(&bytes[..cut], &pool).is_err(),
                "prefix of {cut} bytes must not parse"
            );
        }
        let mut bad_version = bytes.clone();
        bad_version[4] = 9;
        let err = parse_snapshot_bytes(&bad_version, &pool).unwrap_err().to_string();
        assert!(err.contains("version"), "{err}");
        let mut bad_metric = bytes.clone();
        bad_metric[28] = 200; // first set's metric code
        assert!(parse_snapshot_bytes(&bad_metric, &pool).is_err());
        // Non-UTF-8 bytes with the wrong magic are neither format.
        let err = parse_snapshot_bytes(&[0xFF, 0xFE, 0x00, 0x01], &pool).unwrap_err().to_string();
        assert!(err.contains("neither"), "{err}");
    }

    #[test]
    fn malformed_snapshots_error_cleanly() {
        assert!(parse_snapshot("").is_err());
        assert!(parse_snapshot("acf-clusters v1 sets=0 dims=\n").is_err());
        let (partitioning, clusters) = sample();
        let good = write_snapshot(1, 10, &partitioning, &[1.0, 1.0], &clusters).unwrap();
        assert!(parse_snapshot(&good.replace("thresholds", "thersholds")).is_err());
        assert!(parse_snapshot(&good.replace("euclidean", "euclidian")).is_err());
        // Drop the cluster body.
        let headless = good[..good.find("acf-clusters").unwrap()].to_string();
        assert!(parse_snapshot(&headless).is_err());
    }

    #[test]
    fn parse_errors_name_the_offending_line() {
        let (partitioning, clusters) = sample();
        let good = write_snapshot(1, 10, &partitioning, &[1.0, 1.0], &clusters).unwrap();
        // Layout: header, 2 set lines, thresholds — thresholds is line 4.
        let err =
            parse_snapshot(&good.replace("thresholds ", "thresholds x,")).unwrap_err().to_string();
        assert!(err.contains("line 4"), "{err}");
        // Damage inside the cluster body reports the absolute line number
        // within the snapshot, not within the embedded body.
        let body_header_line = good.lines().position(|l| l.starts_with("acf-clusters")).unwrap();
        let err = parse_snapshot(&good.replacen("cluster id=", "cluster xd=", 1))
            .unwrap_err()
            .to_string();
        assert!(err.contains(&format!("line {}", body_header_line + 2)), "{err}");
        let err = parse_snapshot(&good.replace("euclidean", "euclidian")).unwrap_err().to_string();
        assert!(err.contains("line 2"), "{err}");
    }
}
