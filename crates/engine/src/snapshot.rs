//! Epoch snapshot serialization: an engine header wrapped around the
//! `mining::persist` v1 cluster body.
//!
//! ```text
//! dar-engine v1 epoch=<u64> tuples=<u64> sets=<k>
//! set <metric> <attr,attr,…>     (one line per attribute set, in order)
//! thresholds <t,…>               (per-set tree thresholds at extraction)
//! acf-clusters v1 …              (the persist v1 body, verbatim)
//! ```
//!
//! Floats use shortest-roundtrip formatting throughout, so restore is
//! bit-exact.

use dar_core::{AttrSet, ClusterSummary, CoreError, Metric, Partitioning, Schema};
use mining::persist::{read_clusters_at, write_clusters};
use std::fmt::Write as _;

/// A parsed snapshot, ready to install into an engine. Public so the
/// sliding-window layer (`dar-stream`) can embed per-window engine
/// snapshots inside its own ring serialization.
#[derive(Debug)]
pub struct Snapshot {
    /// The epoch the snapshot captured.
    pub epoch: u64,
    /// Tuples the snapshotted engine had ingested.
    pub tuples: u64,
    /// The partitioning the engine mined under.
    pub partitioning: Partitioning,
    /// Per-set tree thresholds at extraction time.
    pub thresholds: Vec<f64>,
    /// The epoch's cluster summaries.
    pub clusters: Vec<ClusterSummary>,
}

fn metric_name(metric: Metric) -> &'static str {
    match metric {
        Metric::Euclidean => "euclidean",
        Metric::Manhattan => "manhattan",
        Metric::Chebyshev => "chebyshev",
        Metric::Discrete => "discrete",
    }
}

fn parse_metric(name: &str) -> Result<Metric, CoreError> {
    match name {
        "euclidean" => Ok(Metric::Euclidean),
        "manhattan" => Ok(Metric::Manhattan),
        "chebyshev" => Ok(Metric::Chebyshev),
        "discrete" => Ok(Metric::Discrete),
        other => Err(CoreError::LayoutMismatch(format!("unknown metric {other:?}"))),
    }
}

/// Serializes one epoch.
///
/// # Errors
/// Propagates serialization failures from the cluster body writer.
pub fn write_snapshot(
    epoch: u64,
    tuples: u64,
    partitioning: &Partitioning,
    thresholds: &[f64],
    clusters: &[ClusterSummary],
) -> Result<String, CoreError> {
    let mut out =
        format!("dar-engine v1 epoch={epoch} tuples={tuples} sets={}\n", partitioning.num_sets());
    for set in partitioning.sets() {
        let attrs: Vec<String> = set.attrs.iter().map(|a| a.to_string()).collect();
        let _ = writeln!(out, "set {} {}", metric_name(set.metric), attrs.join(","));
    }
    let t: Vec<String> = thresholds.iter().map(|v| format!("{v:?}")).collect();
    let _ = writeln!(out, "thresholds {}", t.join(","));
    out.push_str(&write_clusters(clusters)?);
    Ok(out)
}

/// Parses a snapshot back. The schema is synthesized from the highest
/// attribute id the partitioning mentions (the snapshot stores no attribute
/// names; the engine only needs the id space). Parse errors name the
/// offending line, counted from the start of the snapshot text.
pub fn parse_snapshot(text: &str) -> Result<Snapshot, CoreError> {
    let located = |line_no: usize, e: CoreError| match e {
        CoreError::LayoutMismatch(msg) => {
            CoreError::LayoutMismatch(format!("line {line_no}: {msg}"))
        }
        other => other,
    };
    let mut lines = text.lines().enumerate().map(|(i, l)| (i + 1, l));
    let (_, header) =
        lines.next().ok_or_else(|| CoreError::LayoutMismatch("line 1: empty snapshot".into()))?;
    if !header.starts_with("dar-engine v1 ") {
        return Err(CoreError::LayoutMismatch(format!(
            "line 1: not a dar-engine v1 snapshot: {header:?}"
        )));
    }
    let epoch: u64 = header_field(header, "epoch=").map_err(|e| located(1, e))?;
    let tuples: u64 = header_field(header, "tuples=").map_err(|e| located(1, e))?;
    let num_sets: usize = header_field(header, "sets=").map_err(|e| located(1, e))?;

    let mut sets = Vec::with_capacity(num_sets);
    for expect in 0..num_sets {
        let (n, line) = lines.next().ok_or_else(|| {
            CoreError::LayoutMismatch(format!("line {}: missing set line", expect + 2))
        })?;
        let rest = line.strip_prefix("set ").ok_or_else(|| {
            CoreError::LayoutMismatch(format!("line {n}: expected set line, got {line:?}"))
        })?;
        let mut parts = rest.split_whitespace();
        let metric = parse_metric(parts.next().unwrap_or("")).map_err(|e| located(n, e))?;
        let attrs_csv = parts.next().ok_or_else(|| {
            CoreError::LayoutMismatch(format!("line {n}: set line missing attrs: {line:?}"))
        })?;
        let attrs: Vec<usize> = attrs_csv
            .split(',')
            .map(|t| {
                t.parse().map_err(|_| {
                    CoreError::LayoutMismatch(format!("line {n}: bad attribute id {t:?}"))
                })
            })
            .collect::<Result<_, _>>()?;
        sets.push(AttrSet { attrs, metric });
    }
    let max_attr = sets.iter().flat_map(|s| s.attrs.iter()).copied().max().map_or(0, |m| m + 1);
    let schema = Schema::interval_attrs(max_attr);
    let partitioning = Partitioning::new(&schema, sets)?;

    let (tn, t_line) = lines.next().ok_or_else(|| {
        CoreError::LayoutMismatch(format!("line {}: missing thresholds line", num_sets + 2))
    })?;
    let t_csv = t_line.strip_prefix("thresholds ").ok_or_else(|| {
        CoreError::LayoutMismatch(format!("line {tn}: expected thresholds line, got {t_line:?}"))
    })?;
    let thresholds: Vec<f64> = t_csv
        .split(',')
        .map(|t| {
            t.parse()
                .map_err(|_| CoreError::LayoutMismatch(format!("line {tn}: bad threshold {t:?}")))
        })
        .collect::<Result<_, _>>()?;
    if thresholds.len() != num_sets {
        return Err(CoreError::LayoutMismatch(format!(
            "line {tn}: snapshot has {} thresholds for {num_sets} sets",
            thresholds.len()
        )));
    }

    let body_start = text
        .find("acf-clusters v1")
        .ok_or_else(|| CoreError::LayoutMismatch("snapshot missing cluster body".into()))?;
    // Body errors get absolute line numbers within the snapshot text.
    let body_first_line = text[..body_start].matches('\n').count() + 1;
    let clusters = read_clusters_at(&text[body_start..], body_first_line)?;
    Ok(Snapshot { epoch, tuples, partitioning, thresholds, clusters })
}

fn header_field<T: std::str::FromStr>(line: &str, key: &str) -> Result<T, CoreError> {
    let start = line
        .find(key)
        .ok_or_else(|| CoreError::LayoutMismatch(format!("missing {key} in {line:?}")))?
        + key.len();
    line[start..]
        .split_whitespace()
        .next()
        .unwrap_or("")
        .parse()
        .map_err(|_| CoreError::LayoutMismatch(format!("bad {key} field in {line:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dar_core::{Acf, AcfLayout, ClusterId};

    fn sample() -> (Partitioning, Vec<ClusterSummary>) {
        let schema = Schema::interval_attrs(3);
        let partitioning = Partitioning::new(
            &schema,
            vec![
                AttrSet { attrs: vec![0, 1], metric: Metric::Euclidean },
                AttrSet { attrs: vec![2], metric: Metric::Discrete },
            ],
        )
        .unwrap();
        let layout = AcfLayout::new(vec![2, 1]);
        let mut a = Acf::empty(&layout, 0);
        a.add_row(&[vec![1.0, 2.0], vec![0.5]]);
        a.add_row(&[vec![1.1, 2.2], vec![0.25]]);
        let mut b = Acf::empty(&layout, 1);
        b.add_row(&[vec![-1.0, 3.0], vec![7.0]]);
        let clusters = vec![
            ClusterSummary { id: ClusterId(0), set: 0, acf: a },
            ClusterSummary { id: ClusterId(1), set: 1, acf: b },
        ];
        (partitioning, clusters)
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let (partitioning, clusters) = sample();
        let text = write_snapshot(7, 1234, &partitioning, &[0.125, 3.5], &clusters).unwrap();
        let snap = parse_snapshot(&text).unwrap();
        assert_eq!(snap.epoch, 7);
        assert_eq!(snap.tuples, 1234);
        assert_eq!(snap.thresholds, vec![0.125, 3.5]);
        assert_eq!(snap.partitioning.num_sets(), 2);
        assert_eq!(snap.partitioning.set(0).attrs, vec![0, 1]);
        assert_eq!(snap.partitioning.set(0).metric, Metric::Euclidean);
        assert_eq!(snap.partitioning.set(1).metric, Metric::Discrete);
        assert_eq!(snap.clusters, clusters);
    }

    #[test]
    fn empty_epoch_roundtrips() {
        let (partitioning, _) = sample();
        let text = write_snapshot(1, 0, &partitioning, &[1.0, 1.0], &[]).unwrap();
        let snap = parse_snapshot(&text).unwrap();
        assert!(snap.clusters.is_empty());
        assert_eq!(snap.tuples, 0);
    }

    #[test]
    fn malformed_snapshots_error_cleanly() {
        assert!(parse_snapshot("").is_err());
        assert!(parse_snapshot("acf-clusters v1 sets=0 dims=\n").is_err());
        let (partitioning, clusters) = sample();
        let good = write_snapshot(1, 10, &partitioning, &[1.0, 1.0], &clusters).unwrap();
        assert!(parse_snapshot(&good.replace("thresholds", "thersholds")).is_err());
        assert!(parse_snapshot(&good.replace("euclidean", "euclidian")).is_err());
        // Drop the cluster body.
        let headless = good[..good.find("acf-clusters").unwrap()].to_string();
        assert!(parse_snapshot(&headless).is_err());
    }

    #[test]
    fn parse_errors_name_the_offending_line() {
        let (partitioning, clusters) = sample();
        let good = write_snapshot(1, 10, &partitioning, &[1.0, 1.0], &clusters).unwrap();
        // Layout: header, 2 set lines, thresholds — thresholds is line 4.
        let err =
            parse_snapshot(&good.replace("thresholds ", "thresholds x,")).unwrap_err().to_string();
        assert!(err.contains("line 4"), "{err}");
        // Damage inside the cluster body reports the absolute line number
        // within the snapshot, not within the embedded body.
        let body_header_line = good.lines().position(|l| l.starts_with("acf-clusters")).unwrap();
        let err = parse_snapshot(&good.replacen("cluster id=", "cluster xd=", 1))
            .unwrap_err()
            .to_string();
        assert!(err.contains(&format!("line {}", body_header_line + 2)), "{err}");
        let err = parse_snapshot(&good.replace("euclidean", "euclidian")).unwrap_err().to_string();
        assert!(err.contains("line 2"), "{err}");
    }
}
