//! Global observability handles for the long-lived engine
//! (`dar_engine_*`). Handles are cached in a `OnceLock`; the family
//! registers eagerly on first use so zero-valued series are visible in
//! exposition before any traffic arrives.

use dar_obs::{global, Counter, Gauge, Histogram};
use std::sync::OnceLock;

/// The engine metric family.
pub(crate) struct EngineMetrics {
    /// `dar_engine_ingest_batches_total`: accepted ingest batches.
    pub ingest_batches: Counter,
    /// `dar_engine_tuples_total`: tuples inserted into the live forest.
    pub tuples: Counter,
    /// `dar_engine_rejected_batches_total`: batches rejected by
    /// validation (arity mismatch, non-finite values).
    pub rejected_batches: Counter,
    /// `dar_engine_epochs_total`: epochs closed.
    pub epochs: Counter,
    /// `dar_engine_cache_hits_total`: Phase II artifact cache hits.
    pub cache_hits: Counter,
    /// `dar_engine_cache_misses_total`: Phase II artifact cache misses.
    pub cache_misses: Counter,
    /// `dar_engine_wal_batches_replayed_total`: batches re-applied from
    /// the WAL during recovery.
    pub wal_batches_replayed: Counter,
    /// `dar_engine_phase1_insert_ns`: wall-clock of each batch's Phase I
    /// insert loop.
    pub phase1_insert_ns: Histogram,
    /// `dar_engine_epoch_close_ns`: wall-clock of each epoch close
    /// (cluster extraction + optional refinement).
    pub epoch_close_ns: Histogram,
}

/// The cached handles.
pub(crate) fn metrics() -> &'static EngineMetrics {
    static METRICS: OnceLock<EngineMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = global();
        EngineMetrics {
            ingest_batches: r.counter("dar_engine_ingest_batches_total"),
            tuples: r.counter("dar_engine_tuples_total"),
            rejected_batches: r.counter("dar_engine_rejected_batches_total"),
            epochs: r.counter("dar_engine_epochs_total"),
            cache_hits: r.counter("dar_engine_cache_hits_total"),
            cache_misses: r.counter("dar_engine_cache_misses_total"),
            wal_batches_replayed: r.counter("dar_engine_wal_batches_replayed_total"),
            phase1_insert_ns: r.histogram("dar_engine_phase1_insert_ns"),
            epoch_close_ns: r.histogram("dar_engine_epoch_close_ns"),
        }
    })
}

/// The snapshot-persistence metric family (`dar_persist_*`). Shared by
/// name with the coordinator's pull path — the registry is global, so
/// every encoder/decoder in the process lands in the same series.
pub(crate) struct PersistMetrics {
    /// `dar_persist_encode_ns`: wall-clock of each snapshot serialization.
    pub encode_ns: Histogram,
    /// `dar_persist_decode_ns`: wall-clock of each snapshot parse.
    pub decode_ns: Histogram,
    /// `dar_persist_snapshot_bytes`: size of the last snapshot body
    /// encoded or decoded.
    pub snapshot_bytes: Gauge,
}

/// The cached persistence handles.
pub(crate) fn persist_metrics() -> &'static PersistMetrics {
    static METRICS: OnceLock<PersistMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = global();
        PersistMetrics {
            encode_ns: r.histogram("dar_persist_encode_ns"),
            decode_ns: r.histogram("dar_persist_decode_ns"),
            snapshot_bytes: r.gauge("dar_persist_snapshot_bytes"),
        }
    })
}
