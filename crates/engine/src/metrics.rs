//! Global observability handles for the long-lived engine
//! (`dar_engine_*`). Handles are cached in a `OnceLock`; the family
//! registers eagerly on first use so zero-valued series are visible in
//! exposition before any traffic arrives.

use dar_obs::{global, Counter, Histogram};
use std::sync::OnceLock;

/// The engine metric family.
pub(crate) struct EngineMetrics {
    /// `dar_engine_ingest_batches_total`: accepted ingest batches.
    pub ingest_batches: Counter,
    /// `dar_engine_tuples_total`: tuples inserted into the live forest.
    pub tuples: Counter,
    /// `dar_engine_rejected_batches_total`: batches rejected by
    /// validation (arity mismatch, non-finite values).
    pub rejected_batches: Counter,
    /// `dar_engine_epochs_total`: epochs closed.
    pub epochs: Counter,
    /// `dar_engine_cache_hits_total`: Phase II artifact cache hits.
    pub cache_hits: Counter,
    /// `dar_engine_cache_misses_total`: Phase II artifact cache misses.
    pub cache_misses: Counter,
    /// `dar_engine_wal_batches_replayed_total`: batches re-applied from
    /// the WAL during recovery.
    pub wal_batches_replayed: Counter,
    /// `dar_engine_phase1_insert_ns`: wall-clock of each batch's Phase I
    /// insert loop.
    pub phase1_insert_ns: Histogram,
    /// `dar_engine_epoch_close_ns`: wall-clock of each epoch close
    /// (cluster extraction + optional refinement).
    pub epoch_close_ns: Histogram,
}

/// The cached handles.
pub(crate) fn metrics() -> &'static EngineMetrics {
    static METRICS: OnceLock<EngineMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = global();
        EngineMetrics {
            ingest_batches: r.counter("dar_engine_ingest_batches_total"),
            tuples: r.counter("dar_engine_tuples_total"),
            rejected_batches: r.counter("dar_engine_rejected_batches_total"),
            epochs: r.counter("dar_engine_epochs_total"),
            cache_hits: r.counter("dar_engine_cache_hits_total"),
            cache_misses: r.counter("dar_engine_cache_misses_total"),
            wal_batches_replayed: r.counter("dar_engine_wal_batches_replayed_total"),
            phase1_insert_ns: r.histogram("dar_engine_phase1_insert_ns"),
            epoch_close_ns: r.histogram("dar_engine_epoch_close_ns"),
        }
    })
}
