//! The long-lived engine: live Phase I forest + lazily-closed epochs with
//! memoized Phase II artifacts.

use crate::config::EngineConfig;
use crate::snapshot;
use crate::stats::EngineStats;
use birch::{refine_forest_output, AcfForest};
use dar_core::{ClusterId, ClusterSummary, CoreError, Partitioning};
use dar_rank::RankSpec;
use mining::rules::Dar;
use mining::{ClusterDistance, Measure, Phase2Artifacts, RuleQuery};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One closed epoch: the cluster summaries extracted from the live forest,
/// the Phase I state they were extracted under, and the memoized Phase II
/// artifacts keyed by resolved density thresholds.
pub(crate) struct EpochState {
    pub(crate) clusters: Vec<ClusterSummary>,
    pub(crate) tree_thresholds: Vec<f64>,
    pub(crate) s0: u64,
    /// Memoized graph + cliques, keyed by the bit patterns of the resolved
    /// per-set density thresholds (metric, pruning, and the clique cap are
    /// fixed per engine, so density is the only Phase II input that shapes
    /// the graph).
    pub(crate) cache: HashMap<Vec<u64>, Arc<Phase2Artifacts>>,
    /// Memoized *ranked* answers, keyed by density bits plus every rule
    /// and rank knob (see [`rank_key`]). Interior mutability so the
    /// `&self` [`DarEngine::query_cached`] fast path can populate it; dies
    /// with the epoch on ingest like the artifact cache above. Exact-mode
    /// answers only — anytime answers depend on the wall clock.
    pub(crate) rank_cache: Mutex<HashMap<Vec<u64>, Arc<RankedAnswer>>>,
}

impl EpochState {
    pub(crate) fn new(
        clusters: Vec<ClusterSummary>,
        tree_thresholds: Vec<f64>,
        s0: u64,
    ) -> EpochState {
        EpochState {
            clusters,
            tree_thresholds,
            s0,
            cache: HashMap::new(),
            rank_cache: Mutex::new(HashMap::new()),
        }
    }
}

/// One fully-ranked answer, as memoized per knob-set.
#[derive(Debug)]
pub(crate) struct RankedAnswer {
    rules: Vec<Dar>,
    values: Vec<f64>,
    truncated: bool,
    rules_in: usize,
    pruned: usize,
}

/// The result of one [`DarEngine::query`].
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// The mined rules, ranked best-first under [`QueryOutcome::measure`].
    pub rules: Vec<Dar>,
    /// `rules[i]`'s value under the ranking measure.
    pub values: Vec<f64>,
    /// The measure the rules are ranked by.
    pub measure: Measure,
    /// Whether rule generation hit a budget (or, in anytime mode, the
    /// answer is incomplete).
    pub truncated: bool,
    /// Whether the graph and cliques came from the epoch cache.
    pub cached: bool,
    /// The (shared) Phase II artifacts the rules were mined from — rule
    /// indices in [`QueryOutcome::rules`] point into
    /// `artifacts.graph.clusters()`.
    pub artifacts: Arc<Phase2Artifacts>,
    /// The absolute frequency threshold in force.
    pub s0: u64,
    /// The epoch this answer reflects.
    pub epoch: u64,
    /// Rules entering the ranking pipeline (before filter/prune/top-k).
    pub rules_in: usize,
    /// Rules dropped by redundancy pruning.
    pub pruned: usize,
    /// `Some(fraction)` iff this was an anytime (budgeted) answer: the
    /// fraction of clique pairs examined, in `(0, 1]`. `None` means exact.
    pub coverage: Option<f64>,
}

/// Cache key for one ranked answer: the resolved density bits plus every
/// knob that shapes rule generation and ranking.
fn rank_key(density_key: &[u64], query: &RuleQuery) -> Vec<u64> {
    let mut key = density_key.to_vec();
    key.push(query.degree_factor.to_bits());
    key.push(query.max_antecedent as u64);
    key.push(query.max_consequent as u64);
    key.push(query.max_rules as u64);
    key.push(query.max_pair_work);
    key.push(query.measure.discriminant());
    key.push(u64::from(query.min_measure.is_some()));
    key.push(query.min_measure.unwrap_or(0.0).to_bits());
    key.push(query.top_k as u64);
    key.push(u64::from(query.prune_redundant));
    key
}

/// Mines (exact or budgeted) and ranks one answer from cached artifacts.
fn mine_ranked(
    artifacts: &Phase2Artifacts,
    metric: ClusterDistance,
    pool: &dar_par::ThreadPool,
    tuples: u64,
    query: &RuleQuery,
) -> (RankedAnswer, Option<f64>) {
    let (raw, truncated, coverage) = if query.budget_ms > 0 {
        let outcome = dar_rank::mine_budgeted(
            artifacts,
            metric,
            query,
            Duration::from_millis(query.budget_ms),
        );
        (outcome.rules, outcome.truncated, Some(outcome.coverage))
    } else {
        let (rules, truncated) = artifacts.mine_pooled(metric, query, pool);
        (rules, truncated, None)
    };
    let spec = RankSpec::from_query(query, artifacts.graph.clusters(), tuples);
    let ranked = dar_rank::rank(raw, &spec);
    (
        RankedAnswer {
            rules: ranked.rules,
            values: ranked.values,
            truncated,
            rules_in: ranked.rules_in,
            pruned: ranked.pruned,
        },
        coverage,
    )
}

/// Answers through the epoch's rank cache: exact answers are memoized per
/// knob-set, anytime answers never are (they depend on the wall clock).
fn ranked_for(
    state: &EpochState,
    artifacts: &Arc<Phase2Artifacts>,
    rkey: Vec<u64>,
    query: &RuleQuery,
    metric: ClusterDistance,
    pool: &dar_par::ThreadPool,
    tuples: u64,
) -> (Arc<RankedAnswer>, Option<f64>) {
    if query.budget_ms > 0 {
        let (answer, coverage) = mine_ranked(artifacts, metric, pool, tuples, query);
        return (Arc::new(answer), coverage);
    }
    let hit = {
        let cache = state.rank_cache.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        cache.get(&rkey).cloned()
    };
    if let Some(answer) = hit {
        return (answer, None);
    }
    let (answer, _) = mine_ranked(artifacts, metric, pool, tuples, query);
    let answer = Arc::new(answer);
    state
        .rank_cache
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
        .insert(rkey, Arc::clone(&answer));
    (answer, None)
}

/// A long-lived incremental DAR mining engine. See the crate docs for the
/// lifecycle; see `DarEngine::restore` for resuming from a snapshot.
pub struct DarEngine {
    partitioning: Partitioning,
    config: EngineConfig,
    forest: AcfForest,
    /// Worker pool for batch-ingest fan-out and cold Phase II builds,
    /// resolved once from `config.threads` (0 = available parallelism).
    pool: dar_par::ThreadPool,
    epoch: u64,
    tuples: u64,
    epoch_state: Option<EpochState>,
    stats: EngineStats,
}

impl DarEngine {
    /// Creates an empty engine for `partitioning`.
    ///
    /// # Errors
    /// Rejects `initial_thresholds` whose arity differs from the
    /// partitioning's set count.
    pub fn new(partitioning: Partitioning, config: EngineConfig) -> Result<Self, CoreError> {
        let forest = match &config.initial_thresholds {
            Some(t) => {
                if t.len() != partitioning.num_sets() {
                    return Err(CoreError::InvalidPartitioning(format!(
                        "initial_thresholds has {} entries but the partitioning has {} sets",
                        t.len(),
                        partitioning.num_sets()
                    )));
                }
                AcfForest::with_initial_thresholds(partitioning.clone(), &config.birch, t)
            }
            None => AcfForest::new(partitioning.clone(), &config.birch),
        };
        let pool = dar_par::ThreadPool::resolve(config.threads);
        Ok(DarEngine {
            partitioning,
            config,
            forest,
            pool,
            epoch: 0,
            tuples: 0,
            epoch_state: None,
            stats: EngineStats::default(),
        })
    }

    /// The row width [`DarEngine::ingest`] requires: one value per
    /// attribute of the partitioning's id space (the highest attribute id
    /// any set references, plus one).
    pub fn required_row_width(&self) -> usize {
        self.partitioning
            .sets()
            .iter()
            .flat_map(|s| s.attrs.iter())
            .copied()
            .max()
            .map_or(0, |m| m + 1)
    }

    /// Feeds a batch of full tuples (indexed by attribute, matching the
    /// partitioning's id space) into the live forest. Invalidates the
    /// current epoch and its Phase II cache: the next query or snapshot
    /// closes a fresh epoch reflecting all tuples ingested so far.
    ///
    /// Large batches fan out across the per-attribute-set trees on the
    /// engine's worker pool (see [`EngineConfig::threads`]); every tree
    /// still sees every row in batch order, so ingesting in batches — at
    /// any thread count — leaves the engine in exactly the state one
    /// serial concatenated scan would have produced.
    ///
    /// # Errors
    /// The whole batch is validated before any row is inserted, so a
    /// rejected batch leaves the engine (and the current epoch) untouched.
    /// Rows whose width differs from [`DarEngine::required_row_width`] are
    /// rejected with [`CoreError::ArityMismatch`]; NaN or infinite values
    /// are rejected with [`CoreError::NonFiniteValue`]. Either way the
    /// reject is counted in [`EngineStats::rejected_batches`].
    pub fn ingest(&mut self, rows: &[Vec<f64>]) -> Result<(), CoreError> {
        let width = self.required_row_width();
        for (r, row) in rows.iter().enumerate() {
            if row.len() != width {
                self.stats.rejected_batches += 1;
                crate::metrics::metrics().rejected_batches.inc();
                return Err(CoreError::ArityMismatch { expected: width, got: row.len() });
            }
            if let Some(attr) = row.iter().position(|v| !v.is_finite()) {
                self.stats.rejected_batches += 1;
                crate::metrics::metrics().rejected_batches.inc();
                return Err(CoreError::NonFiniteValue { attr, row: r });
            }
        }
        let t = Instant::now();
        self.forest.insert_batch(rows, &self.pool);
        let m = crate::metrics::metrics();
        m.phase1_insert_ns.observe_duration(t.elapsed());
        m.ingest_batches.inc();
        m.tuples.add(rows.len() as u64);
        self.tuples += rows.len() as u64;
        self.stats.tuples_ingested += rows.len() as u64;
        self.stats.batches += 1;
        self.stats.ingest_time += t.elapsed();
        self.epoch_state = None;
        Ok(())
    }

    /// Closes the current epoch if ingest invalidated it (or none was ever
    /// closed): extracts cluster summaries from the live forest — without
    /// consuming it — and resets the Phase II cache.
    fn ensure_epoch(&mut self) {
        if self.epoch_state.is_some() {
            return;
        }
        let t = Instant::now();
        // Thresholds as of extraction: the same values `DarMiner::mine_rows`
        // reads from the forest stats before finishing.
        let tree_thresholds = self.forest.thresholds();
        let mut per_set = self.forest.extract_clusters();
        if self.config.refine_clusters {
            per_set = refine_forest_output(per_set, &tree_thresholds);
        }
        // Sequential ids in per-set order — identical to the one-shot
        // pipeline, so persisted ids and rule keys are comparable.
        let mut clusters = Vec::new();
        let mut next_id = 0u32;
        for (set, acfs) in per_set.into_iter().enumerate() {
            for acf in acfs {
                clusters.push(ClusterSummary { id: ClusterId(next_id), set, acf });
                next_id += 1;
            }
        }
        let s0 = ((self.config.min_support_frac * self.tuples as f64).ceil() as u64).max(1);
        self.epoch_state = Some(EpochState::new(clusters, tree_thresholds, s0));
        self.epoch += 1;
        self.stats.epochs += 1;
        self.stats.epoch_time += t.elapsed();
        let m = crate::metrics::metrics();
        m.epochs.inc();
        m.epoch_close_ns.observe_duration(t.elapsed());
    }

    /// Answers one rule-mining query against the current epoch, closing it
    /// first if needed. The clustering graph and maximal cliques are taken
    /// from the epoch cache when this density setting has been queried
    /// before; only rule generation (cheap, Dfn 5.1 `assoc` checks) runs
    /// per query.
    ///
    /// # Errors
    /// Propagates arity errors from explicit density thresholds.
    pub fn query(&mut self, query: &RuleQuery) -> Result<QueryOutcome, CoreError> {
        self.ensure_epoch();
        let num_sets = self.partitioning.num_sets();
        let state = self.epoch_state.as_ref().expect("epoch just ensured");
        let density = query.density.resolve(&state.clusters, &state.tree_thresholds, num_sets)?;
        let s0 = state.s0;
        let key: Vec<u64> = density.iter().map(|d| d.to_bits()).collect();

        let hit = state.cache.get(&key).cloned();
        let (artifacts, cached) = match hit {
            Some(artifacts) => {
                self.stats.cache_hits += 1;
                crate::metrics::metrics().cache_hits.inc();
                (artifacts, true)
            }
            None => {
                self.stats.cache_misses += 1;
                crate::metrics::metrics().cache_misses.inc();
                let t = Instant::now();
                let state = self.epoch_state.as_ref().expect("epoch just ensured");
                let frequent: Vec<ClusterSummary> =
                    state.clusters.iter().filter(|c| c.is_frequent(s0)).cloned().collect();
                let artifacts = Arc::new(Phase2Artifacts::build_pooled(
                    frequent,
                    density,
                    self.config.metric,
                    self.config.prune_poor_density,
                    self.config.max_cliques,
                    &self.pool,
                ));
                self.stats.phase2_build_time += t.elapsed();
                self.epoch_state
                    .as_mut()
                    .expect("epoch just ensured")
                    .cache
                    .insert(key, Arc::clone(&artifacts));
                (artifacts, false)
            }
        };

        let t = Instant::now();
        let state = self.epoch_state.as_ref().expect("epoch just ensured");
        let density_bits: Vec<u64> =
            artifacts.density_thresholds.iter().map(|d| d.to_bits()).collect();
        let (answer, coverage) = ranked_for(
            state,
            &artifacts,
            rank_key(&density_bits, query),
            query,
            self.config.metric,
            &self.pool,
            self.tuples,
        );
        self.stats.rule_time += t.elapsed();
        self.stats.queries += 1;
        Ok(QueryOutcome {
            rules: answer.rules.clone(),
            values: answer.values.clone(),
            measure: query.measure,
            truncated: answer.truncated,
            cached,
            artifacts,
            s0,
            epoch: self.epoch,
            rules_in: answer.rules_in,
            pruned: answer.pruned,
            coverage,
        })
    }

    /// The read-only fast path for concurrent serving: answers a query
    /// through `&self` when — and only when — the current epoch is closed
    /// and this density setting's Phase II artifacts are already cached.
    ///
    /// Returns `Ok(None)` when the epoch is open (ingest since the last
    /// close) or the density setting has never been built, in which case
    /// the caller must fall back to the `&mut self` [`DarEngine::query`]
    /// path. Rule generation from cached artifacts is pure (Theorem 6.1:
    /// a function of the ACF summaries alone), so any number of threads
    /// holding shared references — e.g. through an `RwLock` read guard —
    /// can run this concurrently. Engine counters are *not* touched (they
    /// need `&mut`); callers that care keep their own hit counter, as
    /// `dar-serve`'s `SharedEngine` does.
    ///
    /// # Errors
    /// Propagates arity errors from explicit density thresholds.
    pub fn query_cached(&self, query: &RuleQuery) -> Result<Option<QueryOutcome>, CoreError> {
        let Some(state) = self.epoch_state.as_ref() else {
            return Ok(None);
        };
        let num_sets = self.partitioning.num_sets();
        let density = query.density.resolve(&state.clusters, &state.tree_thresholds, num_sets)?;
        let key: Vec<u64> = density.iter().map(|d| d.to_bits()).collect();
        let Some(artifacts) = state.cache.get(&key) else {
            return Ok(None);
        };
        let (answer, coverage) = ranked_for(
            state,
            artifacts,
            rank_key(&key, query),
            query,
            self.config.metric,
            &self.pool,
            self.tuples,
        );
        Ok(Some(QueryOutcome {
            rules: answer.rules.clone(),
            values: answer.values.clone(),
            measure: query.measure,
            truncated: answer.truncated,
            cached: true,
            artifacts: Arc::clone(artifacts),
            s0: state.s0,
            epoch: self.epoch,
            rules_in: answer.rules_in,
            pruned: answer.pruned,
            coverage,
        }))
    }

    /// Serializes the current epoch — closing it first if needed — to the
    /// v2 binary snapshot format (engine header + `mining::persist` v2
    /// body), encoding cluster records on the engine's worker pool.
    pub fn snapshot(&mut self) -> Result<Vec<u8>, CoreError> {
        self.ensure_epoch();
        let state = self.epoch_state.as_ref().expect("epoch just ensured");
        let t = Instant::now();
        let bytes = snapshot::write_snapshot_bytes(
            self.epoch,
            self.tuples,
            &self.partitioning,
            &state.tree_thresholds,
            &state.clusters,
            &self.pool,
        )?;
        let m = crate::metrics::persist_metrics();
        m.encode_ns.observe_duration(t.elapsed());
        m.snapshot_bytes.set(bytes.len() as i64);
        Ok(bytes)
    }

    /// Resumes an engine from a snapshot produced by [`DarEngine::snapshot`].
    ///
    /// The snapshot's cluster summaries are installed as the current epoch
    /// (so queries before any further ingest answer exactly as the
    /// snapshotting engine would have) *and* replayed into a fresh forest
    /// via ACF-entry insertion, so subsequent [`DarEngine::ingest`] calls
    /// continue clustering from the summarized state. As in any BIRCH-style
    /// restart from summaries, post-restore epochs see history at summary
    /// granularity rather than tuple granularity.
    ///
    /// Snapshots sealed by `dar-durable` (a trailing checksum footer) are
    /// verified and unsealed first; unsealed pre-durability snapshots
    /// restore as before. Both snapshot formats are accepted — the v2
    /// binary layout this engine writes and the pre-v2 text layout.
    ///
    /// # Errors
    /// Rejects malformed snapshots, checksum-footer mismatches, and
    /// thresholds/partitioning arity mismatches.
    pub fn restore(bytes: &[u8], config: EngineConfig) -> Result<Self, CoreError> {
        let body = dar_durable::unseal_bytes(bytes)
            .map_err(|detail| CoreError::LayoutMismatch(format!("snapshot footer: {detail}")))?
            .0;
        let pool = dar_par::ThreadPool::resolve(config.threads);
        let t = Instant::now();
        let snap = snapshot::parse_snapshot_bytes(body, &pool)?;
        let m = crate::metrics::persist_metrics();
        m.decode_ns.observe_duration(t.elapsed());
        m.snapshot_bytes.set(body.len() as i64);
        Ok(Self::from_parsed_snapshot(snap, config, pool))
    }

    /// [`DarEngine::restore`] over an already-parsed snapshot — the path
    /// taken by callers that cache parsed snapshots (the coordinator) or
    /// embed them in a larger serialization (`dar-stream`).
    pub fn restore_parsed(snap: snapshot::Snapshot, config: EngineConfig) -> Self {
        let pool = dar_par::ThreadPool::resolve(config.threads);
        Self::from_parsed_snapshot(snap, config, pool)
    }

    fn from_parsed_snapshot(
        snap: snapshot::Snapshot,
        config: EngineConfig,
        pool: dar_par::ThreadPool,
    ) -> Self {
        let mut forest = AcfForest::with_initial_thresholds(
            snap.partitioning.clone(),
            &config.birch,
            &snap.thresholds,
        );
        for c in &snap.clusters {
            forest.insert_entry(c.set, c.acf.clone());
        }
        let s0 = ((config.min_support_frac * snap.tuples as f64).ceil() as u64).max(1);
        let stats =
            EngineStats { tuples_ingested: snap.tuples, epochs: 1, ..EngineStats::default() };
        DarEngine {
            partitioning: snap.partitioning,
            config,
            forest,
            pool,
            epoch: snap.epoch,
            tuples: snap.tuples,
            epoch_state: Some(EpochState::new(snap.clusters, snap.thresholds, s0)),
            stats,
        }
    }

    /// Builds a coordinator engine from one sealed snapshot per shard — the
    /// distributed analogue of [`DarEngine::restore`], justified by ACF
    /// additivity (Theorem 6.1): a cluster feature summarizing a set of
    /// tuples is exactly the entry-wise sum over any partition of that set,
    /// so merging per-shard forests by inserting each shard's finished
    /// clusters into one fresh forest loses nothing the single-engine scan
    /// would have kept at the same summary granularity.
    ///
    /// `texts` are sealed snapshots in shard order (shard order is part of
    /// the deterministic contract: insertion order shapes tree splits, so
    /// the coordinator must always merge in the same order). `epoch_base`
    /// is the coordinator's merge-round number: the merged engine starts
    /// with `epoch() == epoch_base` and an *open* epoch, so the first query
    /// closes `epoch_base + 1` — mirroring a single engine whose matching
    /// ingest round has just finished.
    ///
    /// Every shard must have been built under the same partitioning. Tree
    /// thresholds are combined element-wise by maximum: each shard's
    /// threshold is the radius its leaf entries are known to satisfy, and
    /// re-inserting summaries under a smaller threshold could split what a
    /// shard had already absorbed.
    ///
    /// # Errors
    /// Rejects an empty `bodies` slice, malformed or checksum-corrupt
    /// snapshots, and partitionings that differ across shards.
    pub fn merge_snapshots(
        bodies: &[Vec<u8>],
        epoch_base: u64,
        config: EngineConfig,
    ) -> Result<Self, CoreError> {
        let pool = dar_par::ThreadPool::resolve(config.threads);
        let mut snaps = Vec::with_capacity(bodies.len());
        for (i, bytes) in bodies.iter().enumerate() {
            let body = dar_durable::unseal_bytes(bytes).map_err(|detail| {
                CoreError::LayoutMismatch(format!("shard {i} snapshot footer: {detail}"))
            })?;
            snaps.push(snapshot::parse_snapshot_bytes(body.0, &pool)?);
        }
        Self::merge_parsed_snapshots(snaps, epoch_base, config)
    }

    /// [`DarEngine::merge_snapshots`] over already-parsed snapshots, in
    /// shard order. This is the coordinator's steady-state path: with
    /// parsed shard snapshots cached against their ingest watermarks, a
    /// re-merge skips both the wire pull and the parse.
    ///
    /// # Errors
    /// As [`DarEngine::merge_snapshots`], minus the parse failures.
    pub fn merge_parsed_snapshots(
        snaps: Vec<snapshot::Snapshot>,
        epoch_base: u64,
        config: EngineConfig,
    ) -> Result<Self, CoreError> {
        let Some(first) = snaps.first() else {
            return Err(CoreError::LayoutMismatch("merge_snapshots of zero shards".into()));
        };
        let partitioning = first.partitioning.clone();
        let mut thresholds = first.thresholds.clone();
        let mut tuples = 0u64;
        for (i, snap) in snaps.iter().enumerate() {
            if snap.partitioning != partitioning {
                return Err(CoreError::InvalidPartitioning(format!(
                    "shard {i} snapshot was built under a different partitioning"
                )));
            }
            if snap.thresholds.len() != thresholds.len() {
                return Err(CoreError::LayoutMismatch(format!(
                    "shard {i} snapshot has {} thresholds, expected {}",
                    snap.thresholds.len(),
                    thresholds.len()
                )));
            }
            for (t, s) in thresholds.iter_mut().zip(&snap.thresholds) {
                *t = t.max(*s);
            }
            tuples += snap.tuples;
        }
        let mut forest =
            AcfForest::with_initial_thresholds(partitioning.clone(), &config.birch, &thresholds);
        for snap in &snaps {
            for c in &snap.clusters {
                forest.insert_entry(c.set, c.acf.clone());
            }
        }
        let stats = EngineStats { tuples_ingested: tuples, ..EngineStats::default() };
        let pool = dar_par::ThreadPool::resolve(config.threads);
        Ok(DarEngine {
            partitioning,
            config,
            forest,
            pool,
            epoch: epoch_base,
            tuples,
            // Left open on purpose: the first query runs ensure_epoch and
            // closes epoch_base + 1, extracting sequential cluster ids from
            // the merged forest exactly as a single engine would after its
            // matching ingest round.
            epoch_state: None,
            stats,
        })
    }

    /// Builds an engine around an already-populated live forest — the
    /// in-process analogue of [`DarEngine::merge_snapshots`], used by the
    /// sliding-window layer (`dar-stream`) to stand up a fresh engine over
    /// the merged survivors whenever a window retires. `tuples` is the
    /// number of tuples the forest summarizes (it drives `s0`); like
    /// `merge_snapshots`, the epoch starts at `epoch_base` and *open*, so
    /// the first query closes `epoch_base + 1`.
    pub fn with_forest(
        forest: AcfForest,
        tuples: u64,
        epoch_base: u64,
        config: EngineConfig,
    ) -> Self {
        let partitioning = forest.partitioning().clone();
        let stats = EngineStats { tuples_ingested: tuples, ..EngineStats::default() };
        let pool = dar_par::ThreadPool::resolve(config.threads);
        DarEngine {
            partitioning,
            config,
            forest,
            pool,
            epoch: epoch_base,
            tuples,
            epoch_state: None,
            stats,
        }
    }

    /// Replays write-ahead-log batches recovered by `dar-durable` on top
    /// of a restored (or fresh) engine, in log order. Identical to
    /// ingesting them live — forest insertion is purely sequential — so a
    /// crash-recovered engine answers queries exactly as the uncrashed one
    /// would have. Returns the number of batches applied.
    ///
    /// # Errors
    /// Propagates validation errors from [`DarEngine::ingest`]; batches
    /// before the failing one remain applied (they were committed and
    /// valid), so the caller can surface the error without losing state.
    pub fn replay_wal(&mut self, batches: &[Vec<Vec<f64>>]) -> Result<u64, CoreError> {
        for rows in batches {
            self.ingest(rows)?;
            self.stats.wal_batches_replayed += 1;
            crate::metrics::metrics().wal_batches_replayed.inc();
        }
        Ok(batches.len() as u64)
    }

    /// Cumulative engine statistics (forest rebuild count sampled live).
    pub fn stats(&self) -> EngineStats {
        EngineStats { forest_rebuilds: self.forest.stats().total_rebuilds(), ..self.stats.clone() }
    }

    /// Tuples ingested over the engine's lifetime (including snapshot
    /// replays).
    pub fn tuples(&self) -> u64 {
        self.tuples
    }

    /// The current epoch number (0 until the first epoch closes).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The partitioning this engine mines under.
    pub fn partitioning(&self) -> &Partitioning {
        &self.partitioning
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The cluster summaries of the current epoch, closing it if needed.
    pub fn clusters(&mut self) -> &[ClusterSummary] {
        self.ensure_epoch();
        &self.epoch_state.as_ref().expect("epoch just ensured").clusters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dar_core::{Metric, Schema};
    use mining::DensitySpec;

    fn block_rows(n: usize, offset: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                let jitter = ((i + offset) % 7) as f64 * 0.01;
                if (i + offset).is_multiple_of(2) {
                    vec![jitter, 100.0 + jitter]
                } else {
                    vec![50.0 + jitter, 200.0 + jitter]
                }
            })
            .collect()
    }

    fn engine() -> DarEngine {
        let schema = Schema::interval_attrs(2);
        let partitioning = Partitioning::per_attribute(&schema, Metric::Euclidean);
        let mut config = EngineConfig::default();
        config.birch.initial_threshold = 1.0;
        config.birch.memory_budget = usize::MAX;
        config.min_support_frac = 0.2;
        DarEngine::new(partitioning, config).unwrap()
    }

    #[test]
    fn ingest_accumulates_and_invalidates() {
        let mut e = engine();
        e.ingest(&block_rows(40, 0)).unwrap();
        assert_eq!(e.tuples(), 40);
        let q = RuleQuery::default();
        let first = e.query(&q).unwrap();
        assert_eq!(first.epoch, 1);
        assert!(!first.cached);
        // Same density → cached.
        assert!(e.query(&q).unwrap().cached);
        // Ingest closes the next epoch; the cache is gone.
        e.ingest(&block_rows(40, 1)).unwrap();
        let after = e.query(&q).unwrap();
        assert_eq!(after.epoch, 2);
        assert!(!after.cached);
        let stats = e.stats();
        assert_eq!(stats.batches, 2);
        assert_eq!(stats.epochs, 2);
        assert_eq!(stats.queries, 3);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_misses, 2);
    }

    #[test]
    fn distinct_density_settings_get_distinct_cache_entries() {
        let mut e = engine();
        e.ingest(&block_rows(60, 0)).unwrap();
        let a = e.query(&RuleQuery::default()).unwrap();
        assert!(!a.cached);
        let b = e
            .query(&RuleQuery {
                density: DensitySpec::Auto { factor: 3.0 },
                ..RuleQuery::default()
            })
            .unwrap();
        assert!(!b.cached, "different density factor → different graph");
        // Re-tuning only D0 at either density setting hits the cache.
        let c = e.query(&RuleQuery { degree_factor: 0.5, ..RuleQuery::default() }).unwrap();
        assert!(c.cached);
        assert!(c.rules.len() <= a.rules.len(), "tighter D0 cannot add rules");
    }

    #[test]
    fn explicit_density_arity_is_rejected() {
        let mut e = engine();
        e.ingest(&block_rows(10, 0)).unwrap();
        let bad = RuleQuery { density: DensitySpec::Explicit(vec![1.0]), ..RuleQuery::default() };
        assert!(e.query(&bad).is_err());
    }

    #[test]
    fn new_rejects_wrong_threshold_arity() {
        let schema = Schema::interval_attrs(2);
        let partitioning = Partitioning::per_attribute(&schema, Metric::Euclidean);
        let config =
            EngineConfig { initial_thresholds: Some(vec![1.0]), ..EngineConfig::default() };
        assert!(DarEngine::new(partitioning, config).is_err());
    }

    #[test]
    fn ranked_queries_thread_the_knobs_through() {
        let mut e = engine();
        e.ingest(&block_rows(60, 0)).unwrap();
        let exact = e.query(&RuleQuery::default()).unwrap();
        assert!(!exact.rules.is_empty());
        assert_eq!(exact.measure, Measure::Degree);
        assert_eq!(exact.values.len(), exact.rules.len());
        assert!(exact.coverage.is_none(), "exact answers carry no coverage");
        for (r, v) in exact.rules.iter().zip(&exact.values) {
            assert_eq!(r.degree, *v, "degree values are the degrees themselves");
        }
        // Re-asking with identical knobs reproduces the answer (rank
        // cache hit on the second ask).
        let again = e.query(&RuleQuery::default()).unwrap();
        assert_eq!(again.rules, exact.rules);
        assert_eq!(again.values, exact.values);
        // top_k keeps the best-ranked prefix and reports the pre-cut size.
        let top = e.query(&RuleQuery { top_k: 1, ..RuleQuery::default() }).unwrap();
        assert_eq!(top.rules.len(), 1);
        assert_eq!(top.rules[0], exact.rules[0]);
        assert_eq!(top.rules_in, exact.rules.len());
        // Re-ranking by lift permutes, never invents or loses, rules.
        let lift = e.query(&RuleQuery { measure: Measure::Lift, ..RuleQuery::default() }).unwrap();
        assert_eq!(lift.measure, Measure::Lift);
        let mut relifted = lift.rules.clone();
        mining::sort_rules(&mut relifted);
        assert_eq!(relifted, exact.rules);
    }

    #[test]
    fn anytime_answers_carry_honest_coverage_and_converge() {
        let mut e = engine();
        e.ingest(&block_rows(60, 0)).unwrap();
        let exact = e.query(&RuleQuery::default()).unwrap();
        // A generous budget sees every clique pair: coverage 1.0, not
        // truncated, and the rules equal the exact answer.
        let full = e.query(&RuleQuery { budget_ms: 60_000, ..RuleQuery::default() }).unwrap();
        assert_eq!(full.coverage, Some(1.0));
        assert!(!full.truncated);
        assert_eq!(full.rules, exact.rules);
    }

    #[test]
    fn query_before_any_ingest_is_empty_not_a_crash() {
        let mut e = engine();
        let out = e.query(&RuleQuery::default()).unwrap();
        assert!(out.rules.is_empty());
        assert_eq!(out.s0, 1);
    }

    /// Rows with dyadic jitter (0.25 steps): fp sums are exact in any
    /// grouping, so shard merges match the single scan to the bit.
    fn dyadic_rows(n: usize, offset: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                let jitter = ((i + offset) % 4) as f64 * 0.25;
                if (i + offset).is_multiple_of(2) {
                    vec![jitter, 100.0 + jitter]
                } else {
                    vec![50.0 + jitter, 200.0 + jitter]
                }
            })
            .collect()
    }

    fn sealed_snapshot(e: &mut DarEngine) -> Vec<u8> {
        dar_durable::seal_bytes(&e.snapshot().unwrap(), e.epoch())
    }

    #[test]
    fn merge_snapshots_matches_single_engine() {
        // Control: one engine sees all rows in one round.
        let mut control = engine();
        let all: Vec<Vec<f64>> = dyadic_rows(30, 0).into_iter().chain(dyadic_rows(30, 1)).collect();
        control.ingest(&all).unwrap();
        let expected = control.query(&RuleQuery::default()).unwrap();

        // Two shards split the same rows, snapshot, merge.
        let mut a = engine();
        a.ingest(&dyadic_rows(30, 0)).unwrap();
        let mut b = engine();
        b.ingest(&dyadic_rows(30, 1)).unwrap();
        let texts = vec![sealed_snapshot(&mut a), sealed_snapshot(&mut b)];
        let config = control.config().clone();
        let mut merged = DarEngine::merge_snapshots(&texts, 0, config).unwrap();

        assert_eq!(merged.tuples(), 60);
        assert_eq!(merged.epoch(), 0, "epoch_base installs verbatim");
        let got = merged.query(&RuleQuery::default()).unwrap();
        assert_eq!(got.epoch, 1, "first query closes epoch_base + 1");
        assert_eq!(got.s0, expected.s0, "s0 reflects the summed tuple count");
        assert_eq!(got.rules, expected.rules, "well-separated dyadic blocks merge losslessly");
    }

    #[test]
    fn merge_snapshots_rejects_empty_and_mismatched_shards() {
        assert!(DarEngine::merge_snapshots(&[], 0, EngineConfig::default()).is_err());

        let mut two_attr = engine();
        two_attr.ingest(&dyadic_rows(10, 0)).unwrap();
        let schema = Schema::interval_attrs(3);
        let partitioning = Partitioning::per_attribute(&schema, Metric::Euclidean);
        let mut config = EngineConfig::default();
        config.birch.initial_threshold = 1.0;
        config.min_support_frac = 0.2;
        let mut three_attr = DarEngine::new(partitioning, config.clone()).unwrap();
        three_attr.ingest(&vec![vec![0.0, 1.0, 2.0]; 10]).unwrap();
        let texts = vec![sealed_snapshot(&mut two_attr), sealed_snapshot(&mut three_attr)];
        match DarEngine::merge_snapshots(&texts, 0, config) {
            Err(CoreError::InvalidPartitioning(_)) => {}
            Err(other) => panic!("expected InvalidPartitioning, got {other:?}"),
            Ok(_) => panic!("mismatched partitionings must not merge"),
        }
    }

    #[test]
    fn merge_snapshots_takes_elementwise_max_thresholds() {
        // Shard B's forest grew a larger threshold by absorbing a wide
        // spread; the merged forest must not shrink below it.
        let mut a = engine();
        a.ingest(&dyadic_rows(20, 0)).unwrap();
        let mut b = engine();
        let spread: Vec<Vec<f64>> =
            (0..200).map(|i| vec![(i % 40) as f64 * 5.0, 100.0 + (i % 17) as f64 * 7.0]).collect();
        b.ingest(&spread).unwrap();
        let texts = vec![sealed_snapshot(&mut a), sealed_snapshot(&mut b)];
        let merged = DarEngine::merge_snapshots(&texts, 3, a.config().clone()).unwrap();
        assert_eq!(merged.epoch(), 3);
        assert_eq!(merged.tuples(), 220);
        let merged_t = merged.forest.thresholds();
        let bt = b.forest.thresholds();
        for (m, t) in merged_t.iter().zip(&bt) {
            assert!(m >= t, "merged threshold {m} below shard threshold {t}");
        }
    }
}
