//! Engine configuration: the scan-side parameters fixed for the lifetime
//! of the engine.

use birch::BirchConfig;
use mining::{ClusterDistance, DarConfig, RuleQuery};

/// Long-lived engine configuration — exactly the *non*-re-tunable half of
/// [`mining::DarConfig`]: everything here shapes Phase I or the graph
/// construction and is fixed when the engine is created, while the
/// re-tunable Phase II parameters arrive per query as a
/// [`mining::RuleQuery`].
#[derive(Debug, Clone, PartialEq)]
pub struct EngineConfig {
    /// Phase I clustering engine configuration (per-tree).
    pub birch: BirchConfig,
    /// Per-set initial diameter thresholds, overriding
    /// `birch.initial_threshold` (the paper's per-`X_i` threshold
    /// selection, Section 4.3.1).
    pub initial_thresholds: Option<Vec<f64>>,
    /// Frequency threshold `s0` as a fraction of the tuples ingested so
    /// far.
    pub min_support_frac: f64,
    /// Inter-cluster distance used for the graph and rules.
    pub metric: ClusterDistance,
    /// Enable the Section 6.2 poor-density pruning heuristic.
    pub prune_poor_density: bool,
    /// Clique-count cap (0 = unbounded).
    pub max_cliques: usize,
    /// Run the BIRCH "Phase 3" global refinement pass when closing an
    /// epoch.
    pub refine_clusters: bool,
    /// Worker threads for the engine's data-parallel regions (batch ingest
    /// fan-out, cold Phase II builds). `0` means the host's available
    /// parallelism. Output is byte-identical at every setting (see
    /// [`mining::DarConfig::threads`]), so snapshots, WAL replays, and
    /// cached artifacts are interchangeable across engines configured with
    /// different thread counts.
    pub threads: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        let d = DarConfig::default();
        EngineConfig {
            birch: d.birch,
            initial_thresholds: d.initial_thresholds,
            min_support_frac: d.min_support_frac,
            metric: d.metric,
            prune_poor_density: d.prune_poor_density,
            max_cliques: d.max_cliques,
            refine_clusters: d.refine_clusters,
            threads: d.threads,
        }
    }
}

impl EngineConfig {
    /// The equivalent one-shot [`DarConfig`] for a given query — the
    /// configuration under which `DarMiner::mine` over all ingested tuples
    /// must produce the same rules the engine does (the correctness
    /// contract the engine's tests assert).
    pub fn dar_config(&self, query: &RuleQuery) -> DarConfig {
        DarConfig {
            birch: self.birch.clone(),
            initial_thresholds: self.initial_thresholds.clone(),
            min_support_frac: self.min_support_frac,
            metric: self.metric,
            prune_poor_density: self.prune_poor_density,
            max_cliques: self.max_cliques,
            query: query.clone(),
            rescan_candidate_frequency: false,
            refine_clusters: self.refine_clusters,
            threads: self.threads,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_mirrors_the_one_shot_config() {
        let e = EngineConfig::default();
        let d = DarConfig::default();
        assert_eq!(e.dar_config(&d.query), d);
    }
}
