//! The engine's correctness contract, end to end: batched ingest + epoch
//! snapshots + cached Phase II must be *observationally identical* to a
//! fresh one-shot `DarMiner::mine_rows` over the concatenated data — while
//! demonstrably skipping the clique re-enumeration on re-tuned queries.

use dar_core::{Metric, Partitioning, Schema};
use dar_engine::{DarEngine, EngineConfig};
use mining::{DarMiner, DensitySpec, RuleQuery};

/// Three attributes, two co-occurring value blocks plus a sprinkle of
/// drifting values so batches are not identical.
fn rows(n: usize, offset: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| {
            let k = i + offset;
            let jitter = (k % 9) as f64 * 0.01;
            match k % 2 {
                0 => vec![jitter, 100.0 + jitter, 5.0 + jitter * 0.1],
                _ => vec![50.0 + jitter, 200.0 + jitter, 9.0 + jitter * 0.1],
            }
        })
        .collect()
}

fn setup() -> (Partitioning, EngineConfig) {
    let schema = Schema::interval_attrs(3);
    let partitioning = Partitioning::per_attribute(&schema, Metric::Euclidean);
    let mut config = EngineConfig::default();
    config.birch.initial_threshold = 1.0;
    config.birch.memory_budget = usize::MAX;
    config.min_support_frac = 0.1;
    (partitioning, config)
}

#[test]
fn batched_ingest_snapshot_restore_matches_one_shot_mining() {
    let (partitioning, config) = setup();

    // --- live engine: three ingest batches ------------------------------
    let batches = [rows(40, 0), rows(30, 40), rows(50, 70)];
    let mut engine = DarEngine::new(partitioning.clone(), config.clone()).unwrap();
    for batch in &batches {
        engine.ingest(batch).unwrap();
    }
    assert_eq!(engine.tuples(), 120);
    assert_eq!(engine.stats().batches, 3);

    // --- snapshot, then restore into a second engine --------------------
    let text = engine.snapshot().unwrap();
    let mut restored = DarEngine::restore(&text, config.clone()).unwrap();
    assert_eq!(restored.tuples(), 120);
    assert_eq!(restored.partitioning().num_sets(), 3);

    // --- queries: cold, then re-tuned D0 (must hit the clique cache) ----
    let q_cold = RuleQuery::default();
    let q_retuned = RuleQuery { degree_factor: 3.0, ..RuleQuery::default() };

    let cold = restored.query(&q_cold).unwrap();
    assert!(!cold.cached, "first query on a restored epoch builds the graph");
    let retuned = restored.query(&q_retuned).unwrap();
    assert!(retuned.cached, "changed D0 must not re-enumerate cliques");
    let stats = restored.stats();
    assert_eq!(stats.cache_misses, 1);
    assert_eq!(stats.cache_hits, 1);

    // --- ground truth: fresh one-shot mining over the concatenation -----
    let all: Vec<Vec<f64>> = batches.iter().flatten().cloned().collect();
    for (query, outcome) in [(&q_cold, &cold), (&q_retuned, &retuned)] {
        let miner = DarMiner::new(config.dar_config(query));
        let fresh = miner.mine_rows(all.iter().cloned(), &partitioning).unwrap();
        assert_eq!(
            outcome.rules, fresh.rules,
            "engine answer diverged from one-shot mining (degree_factor {})",
            query.degree_factor
        );
        assert_eq!(outcome.s0, fresh.stats.s0);
        assert_eq!(outcome.artifacts.cliques, fresh.cliques);
        assert!(!outcome.rules.is_empty(), "the planted blocks must yield rules");
    }

    // The re-tuned query is strictly more lenient, so it found at least as
    // many rules from the same cached cliques.
    assert!(retuned.rules.len() >= cold.rules.len());

    // --- the live (never-snapshotted) engine agrees too ------------------
    let live = engine.query(&q_cold).unwrap();
    assert_eq!(live.rules, cold.rules);
}

#[test]
fn ingest_after_restore_keeps_mining() {
    let (partitioning, config) = setup();
    let mut engine = DarEngine::new(partitioning, config.clone()).unwrap();
    engine.ingest(&rows(60, 0)).unwrap();
    let text = engine.snapshot().unwrap();

    let mut restored = DarEngine::restore(&text, config).unwrap();
    let before = restored.query(&RuleQuery::default()).unwrap();
    restored.ingest(&rows(60, 60)).unwrap();
    let after = restored.query(&RuleQuery::default()).unwrap();
    assert_eq!(restored.tuples(), 120);
    assert!(after.epoch > before.epoch, "ingest must advance the epoch");
    assert!(!after.cached, "new epoch starts with a cold cache");
    assert!(!after.rules.is_empty());
    assert!(after.s0 > before.s0, "s0 scales with the ingested total");
}

#[test]
fn explicit_density_is_cached_by_resolved_thresholds() {
    let (partitioning, config) = setup();
    let mut engine = DarEngine::new(partitioning, config).unwrap();
    engine.ingest(&rows(80, 0)).unwrap();

    // Resolve the auto density, then ask for the same thresholds
    // explicitly: the cache key is the resolved values, so this must hit.
    let auto = engine.query(&RuleQuery::default()).unwrap();
    let explicit = engine
        .query(&RuleQuery {
            density: DensitySpec::Explicit(auto.artifacts.density_thresholds.clone()),
            ..RuleQuery::default()
        })
        .unwrap();
    assert!(explicit.cached);
    assert_eq!(explicit.rules, auto.rules);
}

#[test]
fn ragged_and_non_finite_batches_are_rejected_atomically() {
    let (partitioning, config) = setup();
    let mut engine = DarEngine::new(partitioning, config).unwrap();
    assert_eq!(engine.required_row_width(), 3);
    engine.ingest(&rows(40, 0)).unwrap();
    let baseline = engine.query(&RuleQuery::default()).unwrap();

    // A batch with one short row is rejected whole: no tuple of it lands.
    let mut ragged = rows(10, 40);
    ragged[7] = vec![1.0, 2.0];
    let err = engine.ingest(&ragged).unwrap_err();
    assert!(err.to_string().contains('2'), "{err}");

    // Same for a NaN hiding mid-batch.
    let mut poisoned = rows(10, 40);
    poisoned[3][1] = f64::NAN;
    assert!(engine.ingest(&poisoned).is_err());

    let stats = engine.stats();
    assert_eq!(stats.rejected_batches, 2);
    assert_eq!(stats.tuples_ingested, 40, "rejected batches must not count");
    assert_eq!(engine.tuples(), 40);

    // The epoch survived the rejects: the same query still answers from
    // cache, identically.
    let after = engine.query(&RuleQuery::default()).unwrap();
    assert!(after.cached, "rejected ingest must not invalidate the epoch");
    assert_eq!(after.rules, baseline.rules);
}

#[test]
fn query_cached_answers_readers_only_after_a_mut_query_built_the_graph() {
    let (partitioning, config) = setup();
    let mut engine = DarEngine::new(partitioning, config).unwrap();
    engine.ingest(&rows(60, 0)).unwrap();

    // Open epoch: the read path cannot close it and must decline.
    let q = RuleQuery::default();
    assert!(engine.query_cached(&q).unwrap().is_none());

    // A &mut query closes the epoch and caches this density setting …
    let built = engine.query(&q).unwrap();

    // … after which the &self path answers identically, as would any
    // number of concurrent readers.
    let cached = engine.query_cached(&q).unwrap().expect("artifacts are cached now");
    assert!(cached.cached);
    assert_eq!(cached.rules, built.rules);
    assert_eq!(cached.epoch, built.epoch);

    // A re-tuned D0 at the same density is also a read-path hit; an unseen
    // density setting is not.
    let retuned = RuleQuery { degree_factor: 3.0, ..RuleQuery::default() };
    assert!(engine.query_cached(&retuned).unwrap().is_some());
    let new_density =
        RuleQuery { density: DensitySpec::Auto { factor: 9.0 }, ..RuleQuery::default() };
    assert!(engine.query_cached(&new_density).unwrap().is_none());

    // The read path never bumps engine counters.
    assert_eq!(engine.stats().queries, 1);
}
