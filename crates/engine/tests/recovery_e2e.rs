//! End-to-end crash recovery: an engine host committing every batch
//! through `dar-durable` (apply, then WAL-log, then ack) is killed at
//! injected fault points, recovered, and compared against uncrashed
//! mining over the acknowledged batches. Per Theorem 6.1 the engine's
//! answers are a pure function of its ingest history, so recovery is
//! correct iff the recovered history equals the acknowledged one — which
//! these tests check through the strictest observable: the mined rules.

use dar_core::{Metric, Partitioning, Schema};
use dar_durable::storage::scratch_dir;
use dar_durable::{DurableStore, FaultPlan, FaultyStorage};
use dar_engine::{DarEngine, EngineConfig};
use mining::RuleQuery;
use std::path::Path;
use std::sync::Arc;

fn partitioning() -> Partitioning {
    let schema = Schema::interval_attrs(2);
    Partitioning::per_attribute(&schema, Metric::Euclidean)
}

fn config() -> EngineConfig {
    let mut config = EngineConfig::default();
    config.birch.initial_threshold = 1.0;
    config.birch.memory_budget = usize::MAX;
    config.min_support_frac = 0.2;
    config
}

fn batch(offset: usize) -> Vec<Vec<f64>> {
    (0..30)
        .map(|i| {
            let jitter = ((i + offset) % 7) as f64 * 0.01;
            if (i + offset).is_multiple_of(2) {
                vec![jitter, 100.0 + jitter]
            } else {
                vec![50.0 + jitter, 200.0 + jitter]
            }
        })
        .collect()
}

/// An engine host running the serve-layer commit protocol: apply to the
/// engine, then WAL-log; a batch is acknowledged only when both succeed.
struct Host {
    store: DurableStore,
    engine: DarEngine,
}

impl Host {
    fn boot(storage: Arc<FaultyStorage>, dir: &Path) -> (Self, dar_durable::Recovered) {
        let (store, recovered) =
            DurableStore::open(storage, Some(dir.join("epoch.snap")), Some(dir.join("ingest.wal")))
                .unwrap();
        let mut engine = match &recovered.snapshot {
            Some(body) => DarEngine::restore(body, config()).unwrap(),
            None => DarEngine::new(partitioning(), config()).unwrap(),
        };
        engine.replay_wal(&recovered.batches).unwrap();
        (Host { store, engine }, recovered)
    }

    fn ingest(&mut self, rows: &[Vec<f64>]) -> bool {
        self.engine.ingest(rows).unwrap();
        self.store.log_batch(rows).is_ok()
    }

    fn snapshot(&mut self) -> bool {
        let text = self.engine.snapshot().unwrap();
        self.store.install_snapshot(&text).is_ok()
    }
}

/// Both engines must answer the default query identically: same rules,
/// same frequency threshold, same tuple count.
fn assert_same_answers(recovered: &mut DarEngine, control: &mut DarEngine) {
    assert_eq!(recovered.tuples(), control.tuples());
    let a = recovered.query(&RuleQuery::default()).unwrap();
    let b = control.query(&RuleQuery::default()).unwrap();
    assert_eq!(a.s0, b.s0);
    assert_eq!(a.rules, b.rules);
    assert!(!a.rules.is_empty(), "test data should actually mine rules");
}

/// Crash the WAL append at several byte budgets: the recovered engine
/// mines exactly the rules a one-shot engine over the acked batches does.
#[test]
fn wal_crash_recovery_equals_one_shot_mining() {
    // Probe one frame's size to aim budgets at frame boundaries ± a tear.
    let probe = scratch_dir("eng_probe");
    let storage = FaultyStorage::new(FaultPlan::default());
    let (mut host, _) = Host::boot(storage.clone(), &probe);
    host.ingest(&batch(0));
    let frame = std::fs::read(probe.join("ingest.wal")).unwrap().len() as u64 - 8;
    drop(host);
    std::fs::remove_dir_all(&probe).ok();

    for budget in [0, frame / 2, frame, frame + 7, 2 * frame, 3 * frame - 1] {
        let dir = scratch_dir(&format!("eng_wal_{budget}"));
        let storage = FaultyStorage::new(FaultPlan {
            fail_append_after_bytes: Some(budget),
            ..FaultPlan::default()
        });
        let (mut host, _) = Host::boot(storage.clone(), &dir);
        let mut acked = Vec::new();
        for b in 0..4 {
            let rows = batch(b);
            if host.ingest(&rows) {
                acked.push(rows);
            } else {
                break;
            }
        }
        drop(host); // crash

        storage.heal();
        let (mut host, recovered) = Host::boot(storage, &dir);
        assert_eq!(recovered.batches.len(), acked.len());
        let mut control = DarEngine::new(partitioning(), config()).unwrap();
        for rows in &acked {
            control.ingest(rows).unwrap();
        }
        if !acked.is_empty() {
            assert_same_answers(&mut host.engine, &mut control);
        }
        assert_eq!(host.engine.stats().wal_batches_replayed, acked.len() as u64);
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Corrupt the newest snapshot: recovery falls back to the previous good
/// one and replays the WAL suffix, answering exactly as "restore that
/// snapshot, then ingest the suffix" does.
#[test]
fn corrupt_newest_snapshot_falls_back_and_replays() {
    let dir = scratch_dir("eng_fallback");
    let storage = FaultyStorage::new(FaultPlan::default());
    let (mut host, _) = Host::boot(storage.clone(), &dir);
    host.ingest(&batch(0));
    host.ingest(&batch(1));
    assert!(host.snapshot()); // seq 2 → becomes .prev
    let prev_text = host.engine.snapshot().unwrap();
    host.ingest(&batch(2));
    assert!(host.snapshot()); // seq 3 → primary
    host.ingest(&batch(3));
    drop(host); // crash

    // Bit-rot the primary snapshot on disk.
    let path = dir.join("epoch.snap");
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x20;
    std::fs::write(&path, &bytes).unwrap();

    let (mut host, recovered) = Host::boot(storage, &dir);
    assert_eq!(recovered.report.corrupt_snapshots_skipped, 1);
    assert_eq!(recovered.snapshot_seq, 2);
    // batch(2) was pruned from the WAL only up to the *previous* install's
    // seq, so the fallback still finds everything it needs: seq 3 and 4.
    assert_eq!(recovered.batches.len(), 2);

    let mut control = DarEngine::restore(&prev_text, config()).unwrap();
    control.ingest(&batch(2)).unwrap();
    control.ingest(&batch(3)).unwrap();
    assert_same_answers(&mut host.engine, &mut control);
    std::fs::remove_dir_all(&dir).ok();
}

/// Crash mid-snapshot-install at each protocol step: no acknowledged
/// batch is ever lost, whatever state the install left behind.
#[test]
fn snapshot_install_crashes_lose_nothing() {
    let plans: &[FaultPlan] = &[
        FaultPlan { fail_write_from: Some(0), ..FaultPlan::default() },
        FaultPlan { fail_sync_from: Some(0), ..FaultPlan::default() },
        FaultPlan { fail_rename_from: Some(0), ..FaultPlan::default() },
        FaultPlan { fail_rename_from: Some(1), ..FaultPlan::default() },
    ];
    for (i, plan) in plans.iter().enumerate() {
        let dir = scratch_dir(&format!("eng_install_{i}"));
        let storage = FaultyStorage::new(FaultPlan::default());
        let (mut host, _) = Host::boot(storage.clone(), &dir);
        host.ingest(&batch(0));
        host.ingest(&batch(1));
        assert!(host.snapshot());
        host.ingest(&batch(2));
        storage.set_plan(plan.clone());
        host.snapshot(); // may fail — the host just keeps serving
        drop(host); // crash

        storage.heal();
        let (mut host, _) = Host::boot(storage, &dir);
        let mut control = DarEngine::restore(
            &{
                let mut c = DarEngine::new(partitioning(), config()).unwrap();
                c.ingest(&batch(0)).unwrap();
                c.ingest(&batch(1)).unwrap();
                c.snapshot().unwrap()
            },
            config(),
        )
        .unwrap();
        control.ingest(&batch(2)).unwrap();
        // All three acked batches are present...
        assert_eq!(host.engine.tuples(), 90);
        // ...but the recovered forest may sit at either granularity: the
        // first snapshot's (install failed → replayed batch 2) or the
        // second's (install landed → no replay). Both answer queries; the
        // replayed shape must equal its restore+ingest control.
        let replayed = host.engine.stats().wal_batches_replayed;
        if replayed > 0 {
            assert_same_answers(&mut host.engine, &mut control);
        } else {
            host.engine.query(&RuleQuery::default()).unwrap();
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
