//! The seeded chaos suite: the coordinator driven through `dar-chaos`
//! fault-injection proxies, asserting the three fault-tolerance bars.
//!
//! * **No acked batch is ever lost** — every `ingest` the coordinator
//!   acknowledged is present in the final merged answer (enforced twice:
//!   the coordinator's own integrity check fails any merge that covers
//!   less than a shard acknowledged, and the final byte-equality against
//!   an unfaulted control engine would catch a silent omission).
//! * **Partial answers are honest** — with one shard partitioned and
//!   `allow_partial` on, queries keep working and the [`Coverage`]
//!   reports exactly which fraction of acknowledged tuples the answer
//!   saw.
//! * **Recovered clusters re-converge** — after the network heals and
//!   the prober verifies the shard back in, the next full-coverage query
//!   is byte-identical to a single engine that never saw a fault.
//!
//! Every fault schedule is a pure function of `(script, seed, connection
//! index)`, so a failure here reproduces under the same seed.

use dar_chaos::{ChaosHandle, ChaosProxy, Fault, FaultMix, Script};
use dar_cluster::{ClusterConfig, Coordinator, ShardHealth};
use dar_core::{Metric, Partitioning, Schema};
use dar_engine::{DarEngine, EngineConfig};
use dar_serve::{protocol, Backoff, ServeConfig, Server, ServerHandle};
use mining::RuleQuery;
use std::time::{Duration, Instant};

/// Two well-separated blocks, dyadic jitter (0.25 steps): exact fp sums
/// in any grouping, so merged rules match the single engine byte for
/// byte regardless of which shard each batch landed on — which is what
/// lets the convergence assertion survive chaos-induced failover.
fn rows(n: usize, offset: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| {
            let k = i + offset;
            let jitter = (k % 4) as f64 * 0.25;
            if k.is_multiple_of(2) {
                vec![jitter, 100.0 + jitter]
            } else {
                vec![50.0 + jitter, 200.0 + jitter]
            }
        })
        .collect()
}

fn engine_config() -> EngineConfig {
    let mut config = EngineConfig::default();
    config.birch.initial_threshold = 5.0;
    config.birch.memory_budget = usize::MAX;
    config.min_support_frac = 0.2;
    config
}

fn fresh_engine() -> DarEngine {
    let schema = Schema::interval_attrs(2);
    let partitioning = Partitioning::per_attribute(&schema, Metric::Euclidean);
    DarEngine::new(partitioning, engine_config()).unwrap()
}

fn shard_config() -> ServeConfig {
    ServeConfig {
        threads: 2,
        read_timeout: Duration::from_secs(10),
        write_timeout: Duration::from_secs(10),
        ..ServeConfig::default()
    }
}

/// Starts `count` shards, each behind its own chaos proxy (initially
/// clean). The coordinator only ever sees the proxy addresses.
fn start_proxied_shards(count: usize, seed: u64) -> (Vec<ServerHandle>, Vec<ChaosHandle>) {
    let handles: Vec<ServerHandle> = (0..count)
        .map(|_| Server::start(fresh_engine(), "127.0.0.1:0", shard_config()).unwrap())
        .collect();
    let proxies: Vec<ChaosHandle> = handles
        .iter()
        .enumerate()
        .map(|(i, h)| {
            ChaosProxy::start(h.addr(), seed.wrapping_add(i as u64), Script::Clean).unwrap()
        })
        .collect();
    (handles, proxies)
}

/// A fault-tolerance-tuned configuration: short deadline so blackholes
/// cannot stall the suite, quick demotion, a fast prober for rejoin.
fn chaos_cluster_config(proxies: &[ChaosHandle]) -> ClusterConfig {
    ClusterConfig {
        shards: proxies.iter().map(|p| p.addr().to_string()).collect(),
        timeout: Duration::from_secs(2),
        engine: engine_config(),
        threads: 2,
        read_timeout: Duration::from_secs(2),
        write_timeout: Duration::from_secs(2),
        allow_partial: true,
        down_after: 2,
        deadline: Duration::from_millis(800),
        backoff: Backoff {
            attempts: 3,
            base: Duration::from_millis(5),
            cap: Duration::from_millis(25),
            seed: 0,
        },
        probe_interval: Duration::from_millis(100),
        probe_timeout: Duration::from_millis(200),
        ..ClusterConfig::default()
    }
}

fn teardown(coordinator: Coordinator, proxies: Vec<ChaosHandle>, handles: Vec<ServerHandle>) {
    // Order matters: the coordinator's drop stops the prober and closes
    // its shard connections, so the proxies' pumps and the shards'
    // workers exit without waiting out read timeouts.
    drop(coordinator);
    for proxy in proxies {
        proxy.shutdown();
    }
    for handle in handles {
        handle.shutdown();
        handle.join().unwrap();
    }
}

/// The four-phase flagship: healthy baseline → partition (degraded but
/// honest) → seeded chaos soak → heal and byte-equal re-convergence.
#[test]
fn partition_degrades_honestly_and_heals_to_byte_equality() {
    let (handles, proxies) = start_proxied_shards(3, 0xDA7A);
    let mut coordinator = Coordinator::connect(chaos_cluster_config(&proxies)).unwrap();

    // --- Phase A: healthy cluster, full-coverage baseline -----------------
    let round1 = [rows(40, 0), rows(40, 40), rows(40, 80)];
    for batch in &round1 {
        coordinator.ingest(batch).unwrap();
    }
    let (a_outcome, a_cov) = coordinator.query(&RuleQuery::default()).unwrap();
    assert!(!a_outcome.rules.is_empty(), "the planted blocks must yield rules");
    assert!(!a_cov.degraded);
    assert_eq!(a_cov.fraction(), 1.0);
    assert_eq!(a_cov.expected_tuples, 120);

    let mut control = fresh_engine();
    for batch in &round1 {
        control.ingest(batch).unwrap();
    }
    let c1 = control.query(&RuleQuery::default()).unwrap();
    assert_eq!(
        protocol::query_response(&a_outcome).encode(),
        protocol::query_response(&c1).encode(),
        "healthy cluster must match the unfaulted control byte for byte"
    );

    // --- Phase B: partition shard 1 (established flows cut too) ----------
    proxies[1].set_script(Script::all(Fault::Blackhole));
    proxies[1].sever();

    // Sequences 4, 5, 6 home on shards 0, 1, 2; seq 5 pays the deadline
    // on the partitioned shard 1 and fails over. Every ingest still acks.
    let round2 = [rows(40, 120), rows(40, 160), rows(40, 200)];
    for batch in &round2 {
        coordinator.ingest(batch).unwrap();
    }
    let (b_outcome, b_cov) = coordinator.query(&RuleQuery::default()).unwrap();
    assert!(!b_outcome.rules.is_empty(), "a degraded answer still serves rules");
    assert!(b_cov.degraded, "a partitioned shard must degrade the answer");
    assert_eq!(b_cov.live_shards, 2);
    assert_eq!(b_cov.total_shards, 3);
    // Shard 0 acked seqs 1 and 4 (80 tuples), shard 2 acked seqs 3, 5
    // (failover), and 6 (120); the dead shard 1 holds the missing 40.
    assert_eq!(b_cov.covered_tuples, 200, "coverage must count exactly the live shards' acks");
    assert_eq!(b_cov.expected_tuples, 240);
    assert!((b_cov.fraction() - 200.0 / 240.0).abs() < 1e-12);
    assert_eq!(
        coordinator.health().state(1),
        ShardHealth::Down,
        "repeated deadline failures must demote the partitioned shard"
    );

    // Down means fast-fail: with the partitioned shard demoted, another
    // round trip never waits out the deadline on it.
    let t = Instant::now();
    coordinator.ingest(&rows(40, 240)).unwrap(); // seq 7 → home shard 0
    let (_, fast_cov) = coordinator.query(&RuleQuery::default()).unwrap();
    assert!(fast_cov.degraded);
    assert!(
        t.elapsed() < Duration::from_secs(10),
        "fast-fail path must not pay per-request deadlines, took {:?}",
        t.elapsed()
    );

    // --- Phase C: seeded random chaos on every link -----------------------
    // Resets cut inside the (≫200-byte) ingest requests, so a faulted
    // delivery was never applied and retry/failover stays exactly-once;
    // the truncate-mid-ack case has its own targeted test below.
    let mix = FaultMix {
        clean: 6,
        delay: 2,
        reset: 2,
        truncate: 0,
        blackhole: 0,
        delay_ms: (1, 5),
        cut_bytes: (1, 200),
    };
    for proxy in &proxies {
        proxy.set_script(Script::Random(mix.clone()));
    }
    let round3 = [rows(40, 280), rows(40, 320), rows(40, 360)];
    for batch in &round3 {
        let mut tries = 0;
        // A failed ingest consumed no sequence number, so blind retry is
        // safe; the shard-side watermark dedups any applied-but-unacked
        // delivery that retried on the same shard.
        while let Err(e) = coordinator.ingest(batch) {
            tries += 1;
            assert!(tries < 50, "ingest must eventually land under the chaos mix: {e}");
        }
    }

    // --- Phase D: heal, wait for the verified rejoin, re-converge ---------
    for proxy in &proxies {
        proxy.set_script(Script::Clean);
    }
    let deadline = Instant::now() + Duration::from_secs(20);
    while coordinator.live_shards() < 3 {
        assert!(
            Instant::now() < deadline,
            "the prober must verify the healed shard back in, health: {:?}",
            (0..3).map(|i| coordinator.health().state(i)).collect::<Vec<_>>()
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    let (d_outcome, d_cov) = coordinator.query(&RuleQuery::default()).unwrap();
    assert!(!d_cov.degraded, "a healed cluster must serve full coverage again");
    assert_eq!(d_cov.fraction(), 1.0);
    assert_eq!(d_cov.expected_tuples, 400, "every acknowledged batch must be covered");
    assert_eq!(coordinator.rounds(), 2, "only full-coverage merges count as rounds");

    // The control mirrors the coordinator's two *full-coverage* cycles:
    // degraded merges do not advance the epoch numbering, so after
    // recovery both sides are on cycle 2 and the bytes must agree.
    for batch in round2.iter().chain([rows(40, 240)].iter()).chain(round3.iter()) {
        control.ingest(batch).unwrap();
    }
    let c2 = control.query(&RuleQuery::default()).unwrap();
    assert_eq!(
        protocol::query_response(&d_outcome).encode(),
        protocol::query_response(&c2).encode(),
        "the recovered cluster must re-converge to the unfaulted control byte for byte"
    );

    teardown(coordinator, proxies, handles);
}

/// The nastiest fault in the vocabulary, in isolation: the shard applies
/// an ingest but the acknowledgement is truncated mid-frame. The
/// coordinator's retry redials and resends the same sequence number; the
/// shard's watermark suppresses the duplicate, so the batch lands
/// exactly once.
#[test]
fn truncated_ingest_ack_replays_idempotently() {
    let (handles, proxies) = start_proxied_shards(1, 7);
    let mut config = chaos_cluster_config(&proxies);
    // No prober: with a single always-Up shard it would never probe, but
    // disabling it pins the proxy's connection indices for the schedule
    // assertion below.
    config.probe_interval = Duration::ZERO;
    let mut coordinator = Coordinator::connect(config).unwrap();

    // Connection 0 was the handshake (clean, persistent). From here on:
    // connection 1 swallows the whole response, connection 2 is clean.
    proxies[0]
        .set_script(Script::Sequence(vec![Fault::Clean, Fault::TruncateResponse { bytes: 0 }]));
    proxies[0].sever();

    let batch = rows(40, 0);
    let total = coordinator.ingest(&batch).unwrap();
    assert_eq!(total, 40, "the retried ingest must ack exactly once");

    let info = &coordinator.shard_infos()[0];
    assert_eq!(info.tuples, 40, "the duplicate delivery must be watermark-suppressed, not applied");
    assert_eq!(info.last_acked_seq, 1);
    assert_eq!(info.expected_tuples, 40);
    assert_eq!(
        proxies[0].schedule(),
        vec![Fault::Clean, Fault::TruncateResponse { bytes: 0 }, Fault::Clean],
        "the deterministic schedule: handshake, truncated ack, clean replay"
    );

    // And the served rules match a control that saw the batch once.
    let (outcome, cov) = coordinator.query(&RuleQuery::default()).unwrap();
    assert!(!cov.degraded);
    let mut control = fresh_engine();
    control.ingest(&batch).unwrap();
    let expected = control.query(&RuleQuery::default()).unwrap();
    assert_eq!(
        protocol::query_response(&outcome).encode(),
        protocol::query_response(&expected).encode()
    );

    teardown(coordinator, proxies, handles);
}

/// A blackholed (accepting but silent) shard cannot stall a caller past
/// the per-request deadline budget: the failure surfaces as the
/// coordinator's structured `deadline` error, promptly.
#[test]
fn deadline_bounds_a_blackholed_shard_stall() {
    let (handles, proxies) = start_proxied_shards(1, 11);
    let mut config = chaos_cluster_config(&proxies);
    config.allow_partial = false;
    config.deadline = Duration::from_millis(500);
    let mut coordinator = Coordinator::connect(config).unwrap();

    proxies[0].set_script(Script::all(Fault::Blackhole));
    proxies[0].sever();

    let t = Instant::now();
    let err = coordinator.ingest(&rows(40, 0)).unwrap_err();
    let elapsed = t.elapsed();
    let server_err = dar_serve::ServerError::of(&err).expect("a structured error");
    assert_eq!(server_err.code, "deadline", "the budget, not a raw timeout, must fire: {err}");
    assert!(
        elapsed < Duration::from_secs(5),
        "one deadline budget (500ms) must bound the stall, took {elapsed:?}"
    );

    teardown(coordinator, proxies, handles);
}
