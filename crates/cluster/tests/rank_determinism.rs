//! Ranked answers through the coordinator — the distributed half of the
//! rule-quality acceptance bar.
//!
//! A query carrying non-default rank knobs (measure, top-k, redundancy
//! pruning) must come back **byte-identical** whether it is served by a
//! single `dar serve` instance or by a coordinator over 1, 2, or 4
//! shards: the merged summary reproduces the single engine's clusters to
//! the bit (dyadic workload, see `cluster_e2e.rs`), and ranking is a
//! deterministic function of the rule statistics with identity
//! tie-breaks, so shard layout cannot reorder the answer. A generously
//! budgeted (anytime) query through the same front-end converges to the
//! exact bytes — full coverage is never annotated.

use dar_cluster::{ClusterConfig, Coordinator, CoordinatorServer};
use dar_core::{Metric, Partitioning, Schema};
use dar_engine::{DarEngine, EngineConfig};
use dar_serve::{Client, Request, ServeConfig, Server, ServerHandle};
use mining::{Measure, RuleQuery};
use std::time::Duration;

/// Two well-separated blocks, dyadic jitter (0.25 steps): exact fp sums
/// in any grouping, so shard merges reproduce the single engine's
/// summaries byte for byte.
fn rows(n: usize, offset: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| {
            let k = i + offset;
            let jitter = (k % 4) as f64 * 0.25;
            if k.is_multiple_of(2) {
                vec![jitter, 100.0 + jitter]
            } else {
                vec![50.0 + jitter, 200.0 + jitter]
            }
        })
        .collect()
}

fn engine_config() -> EngineConfig {
    let mut config = EngineConfig::default();
    config.birch.initial_threshold = 5.0;
    config.birch.memory_budget = usize::MAX;
    config.min_support_frac = 0.2;
    config
}

fn fresh_engine() -> DarEngine {
    let schema = Schema::interval_attrs(2);
    let partitioning = Partitioning::per_attribute(&schema, Metric::Euclidean);
    DarEngine::new(partitioning, engine_config()).unwrap()
}

fn timeout() -> Duration {
    Duration::from_secs(10)
}

fn shard_config() -> ServeConfig {
    ServeConfig {
        threads: 2,
        read_timeout: timeout(),
        write_timeout: timeout(),
        ..ServeConfig::default()
    }
}

fn ranked_query() -> RuleQuery {
    RuleQuery { measure: Measure::Lift, top_k: 10, prune_redundant: true, ..RuleQuery::default() }
}

fn query_line(query: &RuleQuery) -> String {
    Request::Query { query: query.clone() }.to_json().encode()
}

/// Ingests `batches` into a single server, then runs each query line once
/// (in order), returning the raw response lines.
fn single_engine_lines(batches: &[Vec<Vec<f64>>], lines: &[String]) -> Vec<String> {
    let handle = Server::start(fresh_engine(), "127.0.0.1:0", shard_config()).unwrap();
    let mut client = Client::connect(handle.addr(), timeout()).unwrap();
    for batch in batches {
        client.ingest(batch.clone()).unwrap();
    }
    let responses = lines.iter().map(|l| client.round_trip_line(l).unwrap()).collect();
    handle.shutdown();
    handle.join().unwrap();
    responses
}

#[test]
fn ranked_answers_are_byte_identical_at_1_2_4_shards() {
    let batches = vec![rows(40, 0), rows(40, 40)];
    // Exact ranked query, then the same knobs under a generous anytime
    // budget — served back to back so both sides age the same way.
    let exact_line = query_line(&ranked_query());
    let budgeted_line = query_line(&RuleQuery { budget_ms: 60_000, ..ranked_query() });
    let expected = single_engine_lines(&batches, &[exact_line.clone(), budgeted_line.clone()]);

    assert!(
        expected[0].contains("\"antecedent\""),
        "the planted blocks must yield rules, got: {}",
        expected[0]
    );
    assert!(expected[0].contains("\"measure\":\"lift\""), "got: {}", expected[0]);
    assert!(
        !expected[1].contains("\"approx\""),
        "full-coverage anytime answers are never annotated, got: {}",
        expected[1]
    );

    for shard_count in [1usize, 2, 4] {
        let shard_handles: Vec<ServerHandle> = (0..shard_count)
            .map(|_| Server::start(fresh_engine(), "127.0.0.1:0", shard_config()).unwrap())
            .collect();
        let addrs = shard_handles.iter().map(|h| h.addr().to_string()).collect();
        let config = ClusterConfig {
            shards: addrs,
            timeout: timeout(),
            engine: engine_config(),
            threads: 2,
            read_timeout: timeout(),
            write_timeout: timeout(),
            ..ClusterConfig::default()
        };
        let coordinator = Coordinator::connect(config).unwrap();
        let front = CoordinatorServer::start(coordinator, "127.0.0.1:0").unwrap();
        let mut client = Client::connect(front.addr(), timeout()).unwrap();

        for batch in &batches {
            client.ingest(batch.clone()).unwrap();
        }
        for (line, expected_line) in [&exact_line, &budgeted_line].into_iter().zip(&expected) {
            let got = client.round_trip_line(line).unwrap();
            assert_eq!(
                &got, expected_line,
                "ranked answer diverged from the single engine at {shard_count} shard(s)"
            );
        }

        client.shutdown().unwrap();
        front.join();
        for handle in shard_handles {
            handle.shutdown();
            handle.join().unwrap();
        }
    }
}
