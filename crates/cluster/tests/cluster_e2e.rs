//! End-to-end over real TCP: the distributed-equality and crash-recovery
//! acceptance bars.
//!
//! * **Distributed equality** — the same batch stream through a
//!   coordinator over 1, 2, and 4 shards yields query responses
//!   **byte-identical** to a single `dar serve` instance, through the
//!   coordinator front-end's wire surface. The workload uses
//!   dyadic-fraction jitter (multiples of 0.25) over well-separated
//!   blocks, so every per-set floating-point sum is exact in any
//!   grouping and the merged forest reproduces the single-engine
//!   summaries to the bit (see DESIGN.md §12 for the general-data
//!   caveat).
//! * **Crash recovery** — killing a shard between rounds and restarting
//!   it from its write-ahead log loses no acknowledged batch: the
//!   re-merged rules still match the uncrashed control byte for byte.
//! * **SON rescan** — the fanned exact-count pass sums to the
//!   frequencies a single scan over the full relation reports.

use dar_cluster::{ClusterConfig, Coordinator, CoordinatorServer};
use dar_core::{Metric, Partitioning, Schema};
use dar_engine::{DarEngine, EngineConfig};
use dar_serve::{protocol, recover_engine, Client, Request, ServeConfig, Server, ServerHandle};
use mining::RuleQuery;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// Two well-separated blocks, dyadic jitter (0.25 steps): exact fp sums
/// in any order, and every batch starts with a block-0 row so cluster
/// extraction order matches the single engine's.
fn rows(n: usize, offset: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| {
            let k = i + offset;
            let jitter = (k % 4) as f64 * 0.25;
            if k.is_multiple_of(2) {
                vec![jitter, 100.0 + jitter]
            } else {
                vec![50.0 + jitter, 200.0 + jitter]
            }
        })
        .collect()
}

fn engine_config() -> EngineConfig {
    let mut config = EngineConfig::default();
    config.birch.initial_threshold = 5.0;
    config.birch.memory_budget = usize::MAX;
    config.min_support_frac = 0.2;
    config
}

fn fresh_engine() -> DarEngine {
    let schema = Schema::interval_attrs(2);
    let partitioning = Partitioning::per_attribute(&schema, Metric::Euclidean);
    DarEngine::new(partitioning, engine_config()).unwrap()
}

fn timeout() -> Duration {
    Duration::from_secs(10)
}

fn shard_config() -> ServeConfig {
    ServeConfig {
        threads: 2,
        read_timeout: timeout(),
        write_timeout: timeout(),
        ..ServeConfig::default()
    }
}

fn start_shards(count: usize) -> (Vec<ServerHandle>, Vec<String>) {
    let handles: Vec<ServerHandle> = (0..count)
        .map(|_| Server::start(fresh_engine(), "127.0.0.1:0", shard_config()).unwrap())
        .collect();
    let addrs = handles.iter().map(|h| h.addr().to_string()).collect();
    (handles, addrs)
}

fn cluster_config(shards: Vec<String>) -> ClusterConfig {
    ClusterConfig {
        shards,
        timeout: timeout(),
        engine: engine_config(),
        threads: 2,
        read_timeout: timeout(),
        write_timeout: timeout(),
        ..ClusterConfig::default()
    }
}

fn query_line() -> String {
    Request::Query { query: RuleQuery::default() }.to_json().encode()
}

/// Drives `batches` through a single server round by round (ingest the
/// round's batches, then query), returning one response line per round.
fn single_engine_rounds(rounds: &[Vec<Vec<Vec<f64>>>]) -> Vec<String> {
    let handle = Server::start(fresh_engine(), "127.0.0.1:0", shard_config()).unwrap();
    let mut client = Client::connect(handle.addr(), timeout()).unwrap();
    let mut lines = Vec::new();
    for round in rounds {
        for batch in round {
            client.ingest(batch.clone()).unwrap();
        }
        lines.push(client.round_trip_line(&query_line()).unwrap());
    }
    handle.shutdown();
    handle.join().unwrap();
    lines
}

#[test]
fn coordinator_rules_are_byte_identical_to_single_engine_at_1_2_4_shards() {
    // Two rounds of two batches each; a query closes each round.
    let rounds: Vec<Vec<Vec<Vec<f64>>>> =
        vec![vec![rows(40, 0), rows(40, 40)], vec![rows(40, 80), rows(40, 120)]];
    let expected = single_engine_rounds(&rounds);
    assert!(
        expected[0].contains("\"antecedent\""),
        "the planted blocks must yield rules, got: {}",
        expected[0]
    );

    for shard_count in [1usize, 2, 4] {
        let (shard_handles, addrs) = start_shards(shard_count);
        let coordinator = Coordinator::connect(cluster_config(addrs)).unwrap();
        let front = CoordinatorServer::start(coordinator, "127.0.0.1:0").unwrap();
        let mut client = Client::connect(front.addr(), timeout()).unwrap();

        for (round, expected_line) in rounds.iter().zip(&expected) {
            for batch in round {
                client.ingest(batch.clone()).unwrap();
            }
            let got = client.round_trip_line(&query_line()).unwrap();
            assert_eq!(
                &got, expected_line,
                "distributed rules diverged from the single engine at {shard_count} shard(s)"
            );
        }

        // The ordinary read verbs work against the front-end too.
        let stats = client.stats().unwrap();
        let routed =
            stats.get("coordinator").and_then(|c| c.get("routed_tuples")).and_then(|j| j.as_u64());
        assert_eq!(routed, Some(160), "coordinator stats must count routed tuples");
        let clusters = client.request(&Request::Clusters).unwrap();
        assert_eq!(clusters.get("ok").and_then(|j| j.as_bool()), Some(true));

        // Shard verbs are refused on the coordinator surface.
        let refused = client.request(&Request::PullSnapshot).unwrap();
        assert_eq!(refused.get("ok").and_then(|j| j.as_bool()), Some(false));

        client.shutdown().unwrap();
        front.join();
        for handle in shard_handles {
            handle.shutdown();
            handle.join().unwrap();
        }
    }
}

/// Each shard's `pull_snapshot` request counter, read over the wire.
fn shard_pull_counts(addrs: &[String]) -> Vec<u64> {
    addrs
        .iter()
        .map(|addr| {
            let mut client = Client::connect(addr.as_str(), timeout()).unwrap();
            let stats = client.stats().unwrap();
            stats
                .get("server")
                .and_then(|s| s.get("pull_snapshot_requests"))
                .and_then(|j| j.as_u64())
                .unwrap_or(0)
        })
        .collect()
}

#[test]
fn steady_state_merge_reuses_unmoved_shard_snapshots() {
    let (shard_handles, addrs) = start_shards(3);
    let mut coordinator = Coordinator::connect(cluster_config(addrs.clone())).unwrap();

    // Round 1: seqs 1..=3 home on shards 0..=2; the first query pulls all.
    let round1 = [rows(40, 0), rows(40, 40), rows(40, 80)];
    for batch in &round1 {
        coordinator.ingest(batch).unwrap();
    }
    let (first, cov) = coordinator.query(&RuleQuery::default()).unwrap();
    assert!(!cov.degraded);
    assert_eq!(shard_pull_counts(&addrs), vec![1, 1, 1]);

    // A repeated query is answered from the merged view: no pulls at all.
    let (again, _) = coordinator.query(&RuleQuery::default()).unwrap();
    assert_eq!(again.rules, first.rules);
    assert_eq!(shard_pull_counts(&addrs), vec![1, 1, 1]);

    // One more batch (seq 4 → shard 0): the next merge re-pulls only the
    // shard whose acked watermark moved — shards 1 and 2 are served from
    // the coordinator's parsed-snapshot cache.
    coordinator.ingest(&rows(40, 120)).unwrap();
    let (second, cov) = coordinator.query(&RuleQuery::default()).unwrap();
    assert!(!cov.degraded, "cache reuse must not dent coverage");
    assert_eq!(cov.fraction(), 1.0);
    assert_eq!(shard_pull_counts(&addrs), vec![2, 1, 1], "unmoved shards must not be re-pulled");

    // The partially-cached merge is still byte-identical to the control
    // that saw the same batch stream.
    let mut control = fresh_engine();
    for batch in &round1 {
        control.ingest(batch).unwrap();
    }
    control.query(&RuleQuery::default()).unwrap();
    control.ingest(&rows(40, 120)).unwrap();
    let expected = control.query(&RuleQuery::default()).unwrap();
    assert_eq!(
        protocol::query_response(&second).encode(),
        protocol::query_response(&expected).encode(),
        "cached-merge rules diverged from the single engine"
    );

    drop(coordinator);
    for handle in shard_handles {
        handle.shutdown();
        handle.join().unwrap();
    }
}

#[test]
fn window_advance_invalidates_the_snapshot_cache() {
    use dar_serve::{RetirePolicy, WindowSpec, WindowedEngine};

    // One windowed shard (4-batch windows: a single batch never seals on
    // its own). An explicit advance changes the shard's snapshot without
    // moving its acked watermark — exactly the case the cache must not
    // serve stale.
    let schema = Schema::interval_attrs(2);
    let partitioning = Partitioning::per_attribute(&schema, Metric::Euclidean);
    let engine = WindowedEngine::new(
        partitioning,
        engine_config(),
        WindowSpec { batches: 4, slots: 2 },
        RetirePolicy::Remerge,
    )
    .unwrap();
    let handle = Server::start(engine, "127.0.0.1:0", shard_config()).unwrap();
    let addrs = vec![handle.addr().to_string()];
    let mut coordinator = Coordinator::connect(cluster_config(addrs.clone())).unwrap();

    coordinator.ingest(&rows(40, 0)).unwrap();
    coordinator.query(&RuleQuery::default()).unwrap();
    assert_eq!(shard_pull_counts(&addrs), vec![1]);

    coordinator.advance().unwrap();
    coordinator.query(&RuleQuery::default()).unwrap();
    assert_eq!(
        shard_pull_counts(&addrs),
        vec![2],
        "a sealed window must force a re-pull despite the unmoved watermark"
    );

    drop(coordinator);
    handle.shutdown();
    handle.join().unwrap();
}

#[test]
fn advance_passes_through_to_windowed_shards_and_subscribe_is_refused() {
    use dar_serve::{Json, RetirePolicy, WindowSpec, WindowedEngine};

    // Two windowed shards behind a coordinator: the `advance` verb fans
    // out to every shard in order and reports each shard's seal.
    let spec = WindowSpec { batches: 4, slots: 2 };
    let shard_handles: Vec<ServerHandle> = (0..2)
        .map(|_| {
            let schema = Schema::interval_attrs(2);
            let partitioning = Partitioning::per_attribute(&schema, Metric::Euclidean);
            let engine =
                WindowedEngine::new(partitioning, engine_config(), spec, RetirePolicy::Remerge)
                    .unwrap();
            Server::start(engine, "127.0.0.1:0", shard_config()).unwrap()
        })
        .collect();
    let addrs: Vec<String> = shard_handles.iter().map(|h| h.addr().to_string()).collect();
    let coordinator = Coordinator::connect(cluster_config(addrs.clone())).unwrap();
    let front = CoordinatorServer::start(coordinator, "127.0.0.1:0").unwrap();
    let mut client = Client::connect(front.addr(), timeout()).unwrap();

    client.ingest(rows(40, 0)).unwrap();
    let response = client.advance().unwrap();
    let shards = match response.get("shards") {
        Some(Json::Arr(items)) => items.clone(),
        other => panic!("advance response lacks a shards array: {other:?}"),
    };
    assert_eq!(shards.len(), 2, "advance must reach every shard");
    for (entry, addr) in shards.iter().zip(&addrs) {
        assert_eq!(entry.get("addr").and_then(Json::as_str), Some(addr.as_str()));
        assert_eq!(entry.get("sealed").and_then(|j| j.as_u64()), Some(0));
        assert_eq!(entry.get("opened").and_then(|j| j.as_u64()), Some(1));
    }

    // Subscriptions are refused at the coordinator with a structured
    // error pointing at the shards — never a hangup.
    let line = client.round_trip_line(r#"{"verb":"subscribe"}"#).unwrap();
    assert!(line.contains("unsupported"), "got: {line}");
    assert!(line.contains("shards directly"), "got: {line}");

    client.shutdown().unwrap();
    front.join();
    for handle in shard_handles {
        handle.shutdown();
        handle.join().unwrap();
    }

    // Against static shards, the shard's own structured `unsupported`
    // error surfaces through the coordinator verbatim.
    let (shard_handles, addrs) = start_shards(1);
    let coordinator = Coordinator::connect(cluster_config(addrs)).unwrap();
    let front = CoordinatorServer::start(coordinator, "127.0.0.1:0").unwrap();
    let mut client = Client::connect(front.addr(), timeout()).unwrap();
    let err = client.advance().unwrap_err();
    assert_eq!(dar_serve::ServerError::of(&err).unwrap().code, "unsupported");
    client.shutdown().unwrap();
    front.join();
    for handle in shard_handles {
        handle.shutdown();
        handle.join().unwrap();
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dar_cluster_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn durable_shard_config(wal: PathBuf) -> ServeConfig {
    ServeConfig { wal_path: Some(wal), ..shard_config() }
}

#[test]
fn shard_crash_recovery_loses_no_acked_batch_and_rules_still_match() {
    let dir = temp_dir("crash");
    let wal_paths: Vec<PathBuf> = (0..2).map(|i| dir.join(format!("shard{i}.wal"))).collect();

    let mut handles: Vec<Option<ServerHandle>> = wal_paths
        .iter()
        .map(|wal| {
            Some(
                Server::start(fresh_engine(), "127.0.0.1:0", durable_shard_config(wal.clone()))
                    .unwrap(),
            )
        })
        .collect();
    let addrs: Vec<String> =
        handles.iter().map(|h| h.as_ref().unwrap().addr().to_string()).collect();

    let mut coordinator = Coordinator::connect(cluster_config(addrs.clone())).unwrap();
    let round1 = [rows(40, 0), rows(40, 40)];
    for batch in &round1 {
        coordinator.ingest(batch).unwrap();
    }
    let (before, coverage) = coordinator.query(&RuleQuery::default()).unwrap();
    assert!(!before.rules.is_empty());
    assert!(!coverage.degraded, "all shards are healthy: full coverage");
    assert_eq!(coverage.fraction(), 1.0);

    // "Crash" shard 1: tear the server down and restart on the same
    // address from its write-ahead log alone (the graceful path writes no
    // snapshot here — recovery is pure WAL replay; the CI cluster job
    // does the same dance with a real `kill -9`).
    let crashed = handles[1].take().unwrap();
    let crashed_addr = addrs[1].clone();
    crashed.shutdown();
    crashed.join().unwrap();
    let config = durable_shard_config(wal_paths[1].clone());
    let (recovered, report) =
        recover_engine(fresh_engine(), Arc::clone(&config.storage), None, Some(&wal_paths[1]))
            .unwrap();
    assert_eq!(report.wal_batches_replayed, 1, "shard 1 held one of the two round-1 batches");
    assert_eq!(recovered.tuples(), 40, "WAL replay must restore every acked tuple");
    handles[1] = Some(Server::start(recovered, &crashed_addr, config).unwrap());

    // Next round lands on both shards (the coordinator's clients
    // reconnect through the retry path) and the re-merged rules match a
    // control engine that never crashed.
    let round2 = [rows(40, 80), rows(40, 120)];
    for batch in &round2 {
        coordinator.ingest(batch).unwrap();
    }
    let (after, after_coverage) = coordinator.query(&RuleQuery::default()).unwrap();
    assert!(!after_coverage.degraded, "the restarted shard serves again: full coverage");

    // The uncrashed control mirrors the coordinator's two ingest→query
    // rounds, so the epochs (and hence the encoded responses) line up.
    let mut control = fresh_engine();
    for batch in &round1 {
        control.ingest(batch).unwrap();
    }
    control.query(&RuleQuery::default()).unwrap();
    for batch in &round2 {
        control.ingest(batch).unwrap();
    }
    let expected = control.query(&RuleQuery::default()).unwrap();

    assert_eq!(
        protocol::query_response(&after).encode(),
        protocol::query_response(&expected).encode(),
        "post-crash merged rules must match the uncrashed control"
    );

    // Drop the coordinator first so its shard connections close and the
    // shards' worker threads exit without waiting out the read timeout.
    drop(coordinator);
    for handle in handles.into_iter().flatten() {
        handle.shutdown();
        handle.join().unwrap();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn son_rescan_sums_to_exact_global_frequencies() {
    let dir = temp_dir("rescan");
    let wal_paths: Vec<PathBuf> = (0..2).map(|i| dir.join(format!("shard{i}.wal"))).collect();
    let handles: Vec<ServerHandle> = wal_paths
        .iter()
        .map(|wal| {
            Server::start(fresh_engine(), "127.0.0.1:0", durable_shard_config(wal.clone())).unwrap()
        })
        .collect();
    let addrs: Vec<String> = handles.iter().map(|h| h.addr().to_string()).collect();

    let mut config = cluster_config(addrs);
    config.rescan = true;
    let mut coordinator = Coordinator::connect(config).unwrap();
    let batches = [rows(40, 0), rows(40, 40), rows(40, 80)];
    for batch in &batches {
        coordinator.ingest(batch).unwrap();
    }
    let (outcome, _) = coordinator.query(&RuleQuery::default()).unwrap();
    assert!(!outcome.rules.is_empty());
    let (rows_rescanned, counts) = coordinator.rescan(&outcome).unwrap();

    assert_eq!(rows_rescanned, 120, "the shards' WALs jointly cover the whole relation");
    assert_eq!(counts.len(), outcome.rules.len());
    // The planted workload has two clean blocks of 60 tuples each; every
    // mined rule's cluster combination is one of the blocks, so its exact
    // frequency is the block population.
    for (rule, count) in outcome.rules.iter().zip(&counts) {
        assert_eq!(
            *count, 60,
            "rule {:?} => {:?} should match exactly one 60-tuple block",
            rule.antecedent, rule.consequent
        );
    }

    drop(coordinator);
    for handle in handles {
        handle.shutdown();
        handle.join().unwrap();
    }
    let _ = std::fs::remove_dir_all(&dir);
}
