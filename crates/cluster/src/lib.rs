//! # dar-cluster
//!
//! **Sharded Phase I ingest with coordinator-merged Phase II serving** —
//! the step from "one server many clients mine against" to "one logical
//! miner whose Phase I scan is spread across machines".
//!
//! The distribution story is, once more, Theorem 6.1: a cluster feature
//! is an entry-wise sum, so the ACF forest a shard grows over *its* slice
//! of the relation summarizes that slice exactly as the single-engine
//! forest would have — and per-shard forests combine losslessly by
//! re-inserting each shard's finished clusters into one fresh forest
//! ([`dar_engine::DarEngine::merge_snapshots`]). Phase II (clustering
//! graph, cliques, rule generation) then runs **once**, on the merged
//! summary, exactly as if a single engine had scanned everything.
//!
//! Concretely:
//!
//! * a **shard** is a stock `dar serve` instance — its own engine, WAL,
//!   and snapshots, so `dar-durable` crash recovery works per shard,
//!   unchanged. Shards speak three extra verbs: `shard_ingest` (an
//!   idempotent ingest tagged with the coordinator's global batch
//!   sequence number), `pull_snapshot` (the sealed epoch snapshot), and
//!   `shard_rescan` (the SON-style exact verify pass over the shard's
//!   own WAL).
//! * the [`Coordinator`] owns the global batch sequence and routes batch
//!   `seq` to shard `(seq - 1) mod n` — deterministic, so a re-run routes
//!   identically; on query it pulls one sealed snapshot per shard (in
//!   shard order), merges, and serves rules from the merged engine with
//!   the same memoized-epoch behavior a single server has.
//! * the [`CoordinatorServer`] front-end speaks the ordinary client
//!   protocol (`ingest`, `query`, `clusters`, `stats`, `metrics`,
//!   `snapshot`, `shutdown`) over the same newline-JSON codec, so every
//!   existing client — the CLI, the bench load generator, `nc` — points
//!   at a coordinator without changes.
//! * with rescan enabled ([`ClusterConfig::rescan`]), each query's rules
//!   are verified the SON way: the candidate set is fanned back to every
//!   shard, each re-reads its WAL and reports exact per-rule frequencies
//!   over its disjoint slice, and the coordinator sums — exact global
//!   counts, no raw tuple ever crossing the wire twice.
//!
//! Fault tolerance: the coordinator tracks per-shard health
//! (Up/Suspect/Down on a lock-free [`HealthBoard`]), fast-fails requests
//! to Down shards, bounds every shard request by a hard wall-clock
//! deadline ([`ClusterConfig::deadline`], so even a blackholed shard
//! cannot stall a caller), and re-verifies recovering shards on a
//! background prober before letting them serve again. With
//! [`ClusterConfig::allow_partial`], queries keep working while shards
//! are down: the coordinator merges the live shards' snapshots and
//! annotates the response with `degraded:true` plus an honest tuple
//! coverage fraction; full-coverage responses stay byte-identical to a
//! healthy cluster's. See DESIGN.md §14 and the seeded chaos suite in
//! `dar-chaos`.
//!
//! Determinism: with healthy shards, fixed shard count, and the same
//! batch stream, the coordinator's query responses are encoded by the
//! same deterministic codec as a single server's — and for workloads
//! whose per-set sums are exact in floating point (e.g. dyadic
//! fractions), byte-identical to it. In general the merged forest equals
//! the single-engine forest up to floating-point summation order; see
//! DESIGN.md §12.
//!
//! The CLI front-end is `dar cluster-coordinator --addr … --shards
//! host:port,host:port,…`; the bench harness is `dar-bench --bin
//! cluster`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod coordinator;
mod health;
mod metrics;
mod server;

pub use config::ClusterConfig;
pub use coordinator::{Coordinator, Coverage, ShardInfo};
pub use health::{HealthBoard, ShardHealth};
pub use server::{CoordinatorHandle, CoordinatorServer};
