//! The coordinator: deterministic batch routing, snapshot pull-and-merge,
//! and the SON-style exact rescan.

use crate::config::ClusterConfig;
use crate::metrics::{metrics, shard_request_ns};
use dar_core::ClusterSummary;
use dar_engine::{DarEngine, QueryOutcome};
use dar_serve::protocol::Request;
use dar_serve::{Client, Json, ServerError, SharedEngine};
use mining::RuleQuery;
use std::io;
use std::sync::Arc;
use std::time::Instant;

/// One shard's identity, as the coordinator last saw it.
#[derive(Debug, Clone)]
pub struct ShardInfo {
    /// The shard's address, as configured.
    pub addr: String,
    /// Tuples the shard's engine holds.
    pub tuples: u64,
    /// The highest coordinator batch seq the shard has committed.
    pub last_seq: u64,
    /// Whether the shard is in degraded (read-only) mode.
    pub degraded: bool,
}

/// One connected shard.
struct Shard {
    addr: String,
    client: Client,
    /// The highest coordinator seq this shard has acknowledged.
    last_acked_seq: u64,
    /// Tuples this shard must hold: its count at handshake plus every
    /// batch it acknowledged since. Checked against `pull_snapshot` —
    /// losing an acked batch is the one thing the cluster must never do
    /// silently, and tuple counts survive shard restarts (they are
    /// rebuilt by WAL replay), unlike the in-memory seq watermark.
    expected_tuples: u64,
    request_ns: dar_obs::Histogram,
}

impl Shard {
    /// One request against this shard, latency recorded, with the
    /// transient-retry policy applied.
    fn request(&mut self, request: &Request, backoff: &dar_serve::Backoff) -> io::Result<Json> {
        let t = Instant::now();
        let result = self.client.request_with_retry(request, backoff);
        self.request_ns.observe_duration(t.elapsed());
        result
    }
}

/// The cluster coordinator: owns the global batch sequence, fans ingest
/// across shards, and serves Phase II from the merged summary.
///
/// Single-threaded by design — the front-end serializes access (the
/// coordinator's work per request is one or two round trips; the heavy
/// concurrent serving happens *inside* the merged [`SharedEngine`]'s
/// cached read path and on the shards themselves).
pub struct Coordinator {
    shards: Vec<Shard>,
    config: ClusterConfig,
    /// The next batch sequence number to assign (1-based).
    next_seq: u64,
    /// Completed merge rounds; doubles as the `epoch_base` of the next
    /// merge, so coordinator query epochs advance exactly like a single
    /// engine's ingest→query cycles.
    rounds: u64,
    merged: Option<Arc<SharedEngine>>,
    /// Ingest since the last merge: the next query must re-pull.
    dirty: bool,
    routed_batches: u64,
    routed_tuples: u64,
}

impl Coordinator {
    /// Connects to every shard and performs the `shard_stats` handshake:
    /// all shards must agree on the expected row width (same
    /// partitioning), and the global sequence resumes above the highest
    /// watermark any shard reports (a restarted coordinator must not
    /// reuse sequence numbers a shard has already committed).
    ///
    /// # Errors
    /// Connection failures, an empty shard list, or shards whose row
    /// widths disagree.
    pub fn connect(config: ClusterConfig) -> io::Result<Coordinator> {
        if config.shards.is_empty() {
            return Err(io::Error::new(io::ErrorKind::InvalidInput, "no shards configured"));
        }
        let mut shards = Vec::with_capacity(config.shards.len());
        let mut width: Option<u64> = None;
        let mut max_seq = 0u64;
        for (i, addr) in config.shards.iter().enumerate() {
            let mut client = Client::connect(addr.as_str(), config.timeout)?;
            let stats = client.shard_stats()?;
            let shard_width = stats.get("width").and_then(Json::as_u64).unwrap_or(0);
            match width {
                None => width = Some(shard_width),
                Some(w) if w != shard_width => {
                    return Err(io::Error::other(format!(
                        "shard {i} ({addr}) expects rows of width {shard_width}, \
                         shard 0 expects {w}: shards must share one partitioning"
                    )));
                }
                Some(_) => {}
            }
            let last_seq = stats.get("last_seq").and_then(Json::as_u64).unwrap_or(0);
            max_seq = max_seq.max(last_seq);
            shards.push(Shard {
                addr: addr.clone(),
                client,
                last_acked_seq: last_seq,
                expected_tuples: stats.get("tuples").and_then(Json::as_u64).unwrap_or(0),
                request_ns: shard_request_ns(i),
            });
        }
        Ok(Coordinator {
            shards,
            config,
            next_seq: max_seq + 1,
            rounds: 0,
            merged: None,
            dirty: true,
            routed_batches: 0,
            routed_tuples: 0,
        })
    }

    /// Number of connected shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Batches and tuples routed (and acknowledged) so far.
    pub fn routed(&self) -> (u64, u64) {
        (self.routed_batches, self.routed_tuples)
    }

    /// Routes one batch to its deterministic home shard, `(seq - 1) mod
    /// n`, and returns the cumulative acknowledged tuple count (matching
    /// the `total` a single server's ingest response reports when every
    /// batch is acked).
    ///
    /// Transport failures (a dead or unreachable shard, after the
    /// configured retries) fail over to the next shard in order —
    /// availability over placement determinism, counted in
    /// `dar_cluster_degraded_routes_total`. Structured server errors
    /// (`rejected` rows, `degraded` shards) are returned to the caller
    /// unchanged: re-sending bad data elsewhere would just fail again,
    /// and rerouting around a *reachable* shard would double-apply when
    /// it was merely slow. The sequence number is only consumed on
    /// success, so a failed call can simply be retried.
    ///
    /// # Errors
    /// A structured shard error, or the last transport error once every
    /// shard has been tried.
    pub fn ingest(&mut self, rows: &[Vec<f64>]) -> io::Result<u64> {
        let n = self.shards.len();
        let seq = self.next_seq;
        let home = ((seq - 1) % n as u64) as usize;
        let mut last_err = None;
        for attempt in 0..n {
            let idx = (home + attempt) % n;
            let request = Request::ShardIngest { seq, rows: rows.to_vec() };
            let backoff = self.config.backoff.clone();
            match self.shards[idx].request(&request, &backoff) {
                Ok(response) => {
                    if response.get("applied").and_then(Json::as_bool) == Some(false) {
                        metrics().dup_acks.inc();
                    }
                    if attempt > 0 {
                        metrics().degraded_routes.inc();
                    }
                    let shard = &mut self.shards[idx];
                    shard.last_acked_seq = shard.last_acked_seq.max(seq);
                    shard.expected_tuples += rows.len() as u64;
                    self.next_seq += 1;
                    self.dirty = true;
                    self.routed_batches += 1;
                    self.routed_tuples += rows.len() as u64;
                    metrics().batches_routed.inc();
                    metrics().tuples_routed.add(rows.len() as u64);
                    return Ok(self.routed_tuples);
                }
                Err(e) if ServerError::of(&e).is_some() => return Err(e),
                Err(e) => {
                    metrics().shard_failures.inc();
                    last_err = Some(e);
                    let _ = self.shards[idx].client.reconnect();
                }
            }
        }
        Err(last_err.unwrap_or_else(|| io::Error::other("no shards configured")))
    }

    /// The merged engine, re-merging first if ingest has happened since
    /// the last merge: pull one sealed snapshot per shard *in shard
    /// order* (order shapes the merged forest and is part of the
    /// deterministic contract), verify each footer covers everything that
    /// shard acknowledged, and rebuild via
    /// [`DarEngine::merge_snapshots`].
    ///
    /// # Errors
    /// Shard transport failures, a snapshot whose checksum footer fails,
    /// a footer proving an acknowledged batch is missing, or mismatched
    /// shard partitionings.
    pub fn ensure_merged(&mut self) -> io::Result<Arc<SharedEngine>> {
        if !self.dirty {
            if let Some(merged) = &self.merged {
                return Ok(Arc::clone(merged));
            }
        }
        let t = Instant::now();
        let mut texts = Vec::with_capacity(self.shards.len());
        let backoff = self.config.backoff.clone();
        for (i, shard) in self.shards.iter_mut().enumerate() {
            let response = shard.request(&Request::PullSnapshot, &backoff)?;
            let sealed = response
                .get("snapshot")
                .and_then(Json::as_str)
                .ok_or_else(|| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("shard {i} pull_snapshot response lacks a snapshot"),
                    )
                })?
                .to_string();
            // Wire-corruption check here (merge re-verifies); the footer
            // seq is informational — it is the shard's *in-memory*
            // watermark, which a restart resets even when WAL recovery
            // rebuilt every batch.
            dar_durable::unseal(&sealed).map_err(|e| {
                io::Error::new(io::ErrorKind::InvalidData, format!("shard {i}: {e}"))
            })?;
            // The restart-proof lost-data check: the shard must hold at
            // least every tuple it ever acknowledged (WAL replay restores
            // the count after a crash; a shard that comes back lighter
            // lost an acked batch, and serving rules that silently
            // exclude it is the one thing the cluster must never do).
            let tuples = response.get("tuples").and_then(Json::as_u64).unwrap_or(0);
            if tuples < shard.expected_tuples {
                return Err(io::Error::other(format!(
                    "shard {i} ({}) holds {tuples} tuples but acknowledged {}: \
                     an acknowledged batch is missing",
                    shard.addr, shard.expected_tuples
                )));
            }
            texts.push(sealed);
        }
        let epoch_base = self.rounds;
        let engine = DarEngine::merge_snapshots(&texts, epoch_base, self.config.engine.clone())
            .map_err(|e| io::Error::other(format!("merge: {e}")))?;
        self.rounds += 1;
        let merged = Arc::new(SharedEngine::new(engine));
        self.merged = Some(Arc::clone(&merged));
        self.dirty = false;
        metrics().merges.inc();
        metrics().merge_ns.observe_duration(t.elapsed());
        Ok(merged)
    }

    /// Answers a rule query from the merged engine (merging first if
    /// needed). The outcome is exactly what the equivalent single engine
    /// would produce from the merged summary — same deterministic rule
    /// order, same epoch numbering.
    ///
    /// # Errors
    /// Merge failures (see [`Coordinator::ensure_merged`]) or query
    /// validation errors.
    pub fn query(&mut self, query: &RuleQuery) -> io::Result<QueryOutcome> {
        let merged = self.ensure_merged()?;
        merged.query(query).map_err(|e| io::Error::other(format!("query: {e}")))
    }

    /// The merged epoch's cluster summaries (merging first if needed).
    ///
    /// # Errors
    /// Merge failures.
    pub fn clusters(&mut self) -> io::Result<(u64, Vec<ClusterSummary>)> {
        let merged = self.ensure_merged()?;
        Ok(merged.clusters())
    }

    /// Serializes the merged epoch (merging first if needed): `(text,
    /// epoch, tuples)`.
    ///
    /// # Errors
    /// Merge or serialization failures.
    pub fn snapshot(&mut self) -> io::Result<(String, u64, u64)> {
        let merged = self.ensure_merged()?;
        merged.snapshot().map_err(|e| io::Error::other(format!("snapshot: {e}")))
    }

    /// Passes an explicit window seal through to every shard, in shard
    /// order. The coordinator keeps no window state of its own — windows
    /// live on shards started with `--window-batches` — so this is pure
    /// pass-through; it marks the merged engine dirty because sealing
    /// changes what the shards snapshot next. Subscriptions are *not*
    /// proxied: churn subscribers attach to shards directly.
    ///
    /// # Errors
    /// Shard transport failures, or a shard's structured error verbatim
    /// (e.g. `unsupported` from a shard that is not windowed).
    pub fn advance(&mut self) -> io::Result<Vec<(String, Json)>> {
        let backoff = self.config.backoff.clone();
        let mut responses = Vec::with_capacity(self.shards.len());
        for shard in &mut self.shards {
            let response = shard.request(&Request::Advance, &backoff)?;
            responses.push((shard.addr.clone(), response));
        }
        self.dirty = true;
        Ok(responses)
    }

    /// The SON exact-verification pass for one query outcome: ship the
    /// merged clusters and each rule's positions to every shard, let each
    /// re-read its own WAL and count matches over its disjoint slice, and
    /// sum. Because the shards partition the relation, the sums are the
    /// *exact* global frequencies of each rule's cluster combination —
    /// the second scan of Savasere–Omiecinski–Navathe, without raw
    /// tuples ever crossing the wire.
    ///
    /// Returns `(rows_rescanned, per_rule_counts)`; `rows_rescanned` is
    /// summed across shards, so a value below the merged engine's tuple
    /// count reveals a shard whose WAL no longer retains its full history.
    ///
    /// # Errors
    /// Shard failures, or a shard whose count vector does not match the
    /// rule count (a protocol violation).
    pub fn rescan(&mut self, outcome: &QueryOutcome) -> io::Result<(u64, Vec<u64>)> {
        let clusters_text = mining::persist::write_clusters(outcome.artifacts.graph.clusters())
            .map_err(|e| io::Error::other(format!("clusters: {e}")))?;
        let rules: Vec<Vec<usize>> = outcome
            .rules
            .iter()
            .map(|r| {
                let mut positions: Vec<usize> =
                    r.antecedent.iter().chain(r.consequent.iter()).copied().collect();
                positions.sort_unstable();
                positions.dedup();
                positions
            })
            .collect();
        let mut total_rows = 0u64;
        let mut totals = vec![0u64; rules.len()];
        let backoff = self.config.backoff.clone();
        for (i, shard) in self.shards.iter_mut().enumerate() {
            let request =
                Request::ShardRescan { clusters: clusters_text.clone(), rules: rules.clone() };
            let response = shard.request(&request, &backoff)?;
            let rows_scanned = response.get("rows_scanned").and_then(Json::as_u64).unwrap_or(0);
            let counts: Vec<u64> = match response.get("counts") {
                Some(Json::Arr(items)) => items.iter().filter_map(Json::as_u64).collect(),
                _ => Vec::new(),
            };
            if counts.len() != totals.len() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "shard {i} returned {} counts for {} rules",
                        counts.len(),
                        totals.len()
                    ),
                ));
            }
            total_rows += rows_scanned;
            for (t, c) in totals.iter_mut().zip(&counts) {
                *t += c;
            }
        }
        metrics().rescans.inc();
        Ok((total_rows, totals))
    }

    /// Whether the SON rescan is enabled for this coordinator.
    pub fn rescan_enabled(&self) -> bool {
        self.config.rescan
    }

    /// Fresh `shard_stats` from every shard, in shard order.
    ///
    /// # Errors
    /// Shard transport failures.
    pub fn shard_infos(&mut self) -> io::Result<Vec<ShardInfo>> {
        let backoff = self.config.backoff.clone();
        let mut infos = Vec::with_capacity(self.shards.len());
        for shard in &mut self.shards {
            let stats = shard.request(&Request::ShardStats, &backoff)?;
            infos.push(ShardInfo {
                addr: shard.addr.clone(),
                tuples: stats.get("tuples").and_then(Json::as_u64).unwrap_or(0),
                last_seq: stats.get("last_seq").and_then(Json::as_u64).unwrap_or(0),
                degraded: stats.get("degraded").and_then(Json::as_bool).unwrap_or(false),
            });
        }
        Ok(infos)
    }

    /// Completed merge rounds.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// The configuration this coordinator was connected with.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }
}
