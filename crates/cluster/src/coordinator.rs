//! The coordinator: deterministic batch routing, snapshot pull-and-merge,
//! shard health tracking with partial-availability serving, and the
//! SON-style exact rescan.

use crate::config::ClusterConfig;
use crate::health::{HealthBoard, ShardHealth};
use crate::metrics::{metrics, shard_request_ns};
use dar_core::ClusterSummary;
use dar_engine::{DarEngine, QueryOutcome};
use dar_serve::protocol::Request;
use dar_serve::{Client, Json, ServerError, SharedEngine};
use mining::RuleQuery;
use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One shard's identity, as the coordinator last saw it.
#[derive(Debug, Clone)]
pub struct ShardInfo {
    /// The shard's address, as configured.
    pub addr: String,
    /// The shard's health state on the coordinator's board.
    pub health: ShardHealth,
    /// Whether `tuples`/`last_seq`/`degraded` come from a live
    /// `shard_stats` exchange (`true`) or from the coordinator's cached
    /// watermarks because the shard is unreachable (`false`).
    pub live: bool,
    /// Tuples the shard's engine holds (or must hold, when cached).
    pub tuples: u64,
    /// The highest coordinator batch seq the shard reports committed (its
    /// in-memory watermark; resets on restart even though WAL replay
    /// restores the data).
    pub last_seq: u64,
    /// Whether the shard is in degraded (read-only) mode.
    pub degraded: bool,
    /// The highest coordinator batch seq this coordinator saw the shard
    /// acknowledge — the coordinator-side watermark, which survives shard
    /// restarts.
    pub last_acked_seq: u64,
    /// Tuples the shard must hold to cover everything it acknowledged.
    pub expected_tuples: u64,
}

/// How much of the cluster's acknowledged data an answer covers.
///
/// A full-coverage answer (`degraded == false`) saw every acknowledged
/// tuple; a degraded one ([`ClusterConfig::allow_partial`]) merged only
/// the live shards and says exactly how much it saw.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Coverage {
    /// Whether any shard's slice is missing from the answer.
    pub degraded: bool,
    /// Shards whose snapshots the answer merged.
    pub live_shards: usize,
    /// Shards configured.
    pub total_shards: usize,
    /// Acknowledged tuples on the merged shards.
    pub covered_tuples: u64,
    /// Acknowledged tuples cluster-wide.
    pub expected_tuples: u64,
}

impl Coverage {
    /// The covered fraction of acknowledged tuples (1.0 on an empty
    /// cluster).
    pub fn fraction(&self) -> f64 {
        if self.expected_tuples == 0 {
            1.0
        } else {
            self.covered_tuples as f64 / self.expected_tuples as f64
        }
    }
}

/// One configured shard. The connection is lazy: `None` until the first
/// (re)dial succeeds, dropped again on transport failure so the next
/// request starts from a clean socket.
struct Shard {
    addr: String,
    client: Option<Client>,
    request_ns: dar_obs::Histogram,
}

/// One shard's last pulled snapshot, parsed, keyed by the acked
/// watermark it was pulled at. Batches reach a shard only through this
/// coordinator, so as long as the shard's acked seq has not moved (and
/// no window advance intervened — [`Coordinator::advance`] clears the
/// cache), the shard's snapshot content is exactly what was verified at
/// pull time and the round trip plus parse can be skipped.
struct CachedSnap {
    acked_seq: u64,
    snap: dar_engine::snapshot::Snapshot,
}

/// The merged engine plus the coverage it was built under.
struct MergedView {
    shared: Arc<SharedEngine>,
    coverage: Coverage,
    /// The health-board generation at merge time: a degraded view is
    /// rebuilt when the generation moved (a shard came back or went away).
    health_epoch: u64,
}

/// The background health prober: its own thread, its own short-timeout
/// connections, stopped on coordinator drop.
struct Prober {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Drop for Prober {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// The cluster coordinator: owns the global batch sequence, fans ingest
/// across shards, and serves Phase II from the merged summary.
///
/// Single-threaded by design — the front-end serializes access (the
/// coordinator's work per request is one or two round trips; the heavy
/// concurrent serving happens *inside* the merged [`SharedEngine`]'s
/// cached read path and on the shards themselves). The only background
/// activity is the health prober, which shares the lock-free
/// [`HealthBoard`] and never touches the coordinator's own sockets.
pub struct Coordinator {
    shards: Vec<Shard>,
    config: ClusterConfig,
    board: Arc<HealthBoard>,
    _prober: Option<Prober>,
    /// The next batch sequence number to assign (1-based).
    next_seq: u64,
    /// Completed *full-coverage* merge rounds; doubles as the
    /// `epoch_base` of the next merge, so coordinator query epochs
    /// advance exactly like a single engine's ingest→query cycles.
    /// Degraded merges do not count — they are provisional views, and
    /// counting them would desynchronize epoch numbering from the
    /// equivalent single server the cluster re-converges with.
    rounds: u64,
    merged: Option<MergedView>,
    /// Per-shard parsed-snapshot cache for merge rounds, keyed by acked
    /// watermark (see [`CachedSnap`]).
    snap_cache: Vec<Option<CachedSnap>>,
    /// Ingest since the last merge: the next query must re-pull.
    dirty: bool,
    routed_batches: u64,
    routed_tuples: u64,
}

impl Coordinator {
    /// Connects to every shard and performs the `shard_stats` handshake:
    /// all reachable shards must agree on the expected row width (same
    /// partitioning), and the global sequence resumes above the highest
    /// watermark any reachable shard reports (a restarted coordinator
    /// must not reuse sequence numbers a shard has already committed).
    ///
    /// With [`ClusterConfig::allow_partial`], unreachable shards are
    /// marked Down instead of failing the connect (at least one shard
    /// must respond, to agree the width); the prober verifies them back
    /// in when they return. Note the sequence-resume watermark then only
    /// covers the reachable shards — routing stays safe within this
    /// coordinator's lifetime (the in-process sequence is monotone), but
    /// a coordinator *restart* while a shard holding the highest
    /// watermark is down should be followed by a check of
    /// `dar_cluster_dup_acks_total`.
    ///
    /// # Errors
    /// Connection failures (every shard, under `allow_partial`), an empty
    /// shard list, or shards whose row widths disagree.
    pub fn connect(config: ClusterConfig) -> io::Result<Coordinator> {
        if config.shards.is_empty() {
            return Err(io::Error::new(io::ErrorKind::InvalidInput, "no shards configured"));
        }
        let board = Arc::new(HealthBoard::new(config.shards.len(), config.down_after));
        let mut shards = Vec::with_capacity(config.shards.len());
        let mut width: Option<u64> = None;
        let mut max_seq = 0u64;
        let mut first_err: Option<io::Error> = None;
        for (i, addr) in config.shards.iter().enumerate() {
            let handshake = Client::connect(addr.as_str(), config.timeout)
                .and_then(|mut client| client.shard_stats().map(|stats| (client, stats)));
            let (client, stats) = match handshake {
                Ok(pair) => pair,
                Err(e) if config.allow_partial => {
                    metrics().shard_failures.inc();
                    board.force_down(i);
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                    shards.push(Shard {
                        addr: addr.clone(),
                        client: None,
                        request_ns: shard_request_ns(i),
                    });
                    continue;
                }
                Err(e) => return Err(e),
            };
            let shard_width = stats.get("width").and_then(Json::as_u64).unwrap_or(0);
            match width {
                None => width = Some(shard_width),
                Some(w) if w != shard_width => {
                    return Err(io::Error::other(format!(
                        "shard {i} ({addr}) expects rows of width {shard_width}, \
                         an earlier shard expects {w}: shards must share one partitioning"
                    )));
                }
                Some(_) => {}
            }
            let last_seq = stats.get("last_seq").and_then(Json::as_u64).unwrap_or(0);
            max_seq = max_seq.max(last_seq);
            board.publish(i, last_seq, stats.get("tuples").and_then(Json::as_u64).unwrap_or(0));
            shards.push(Shard {
                addr: addr.clone(),
                client: Some(client),
                request_ns: shard_request_ns(i),
            });
        }
        let Some(width) = width else {
            return Err(first_err.unwrap_or_else(|| io::Error::other("no shard reachable")));
        };
        let prober = spawn_prober(&config, &board, width);
        let snap_cache = (0..shards.len()).map(|_| None).collect();
        Ok(Coordinator {
            shards,
            config,
            board,
            _prober: prober,
            next_seq: max_seq + 1,
            rounds: 0,
            merged: None,
            snap_cache,
            dirty: true,
            routed_batches: 0,
            routed_tuples: 0,
        })
    }

    /// Number of configured shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Shards not currently marked Down.
    pub fn live_shards(&self) -> usize {
        self.board.live_count()
    }

    /// The shared health board (for tests and diagnostics).
    pub fn health(&self) -> &HealthBoard {
        &self.board
    }

    /// Batches and tuples routed (and acknowledged) so far.
    pub fn routed(&self) -> (u64, u64) {
        (self.routed_batches, self.routed_tuples)
    }

    /// One request against shard `idx`, with the full fault-tolerance
    /// policy applied: fast-fail if the shard is Down (a structured
    /// `shard-down` error, no socket touched), lazy redial, the
    /// transient-retry backoff under the hard per-request deadline
    /// budget, latency recorded, and the health board updated from the
    /// outcome.
    fn shard_request(&mut self, idx: usize, request: &Request) -> io::Result<Json> {
        if self.board.state(idx) == ShardHealth::Down {
            metrics().fast_fails.inc();
            return Err(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                ServerError {
                    code: "shard-down".into(),
                    message: format!(
                        "shard {idx} ({}) is marked down; awaiting rejoin",
                        self.shards[idx].addr
                    ),
                },
            ));
        }
        let deadline = Instant::now() + self.config.deadline;
        let shard = &mut self.shards[idx];
        if shard.client.is_none() {
            match Client::connect(
                shard.addr.as_str(),
                self.config.timeout.min(self.config.deadline),
            ) {
                Ok(client) => shard.client = Some(client),
                Err(e) => {
                    metrics().shard_failures.inc();
                    self.board.record_failure(idx);
                    return Err(e);
                }
            }
        }
        let t = Instant::now();
        let result = shard
            .client
            .as_mut()
            .expect("client dialed above")
            .request_with_retry_deadline(request, &self.config.backoff, deadline);
        shard.request_ns.observe_duration(t.elapsed());
        match &result {
            Ok(_) => {
                if self.board.record_success(idx) {
                    metrics().rejoins.inc();
                }
            }
            Err(e) if is_shard_reply(e) => {
                // The shard responded (a structured refusal): transport
                // is healthy even though the request failed.
                self.board.record_success(idx);
            }
            Err(_) => {
                metrics().shard_failures.inc();
                self.board.record_failure(idx);
                shard.client = None;
            }
        }
        result
    }

    /// Routes one batch to its deterministic home shard, `(seq - 1) mod
    /// n`, and returns the cumulative acknowledged tuple count (matching
    /// the `total` a single server's ingest response reports when every
    /// batch is acked).
    ///
    /// Transport failures (a dead, Down, or unreachable shard, after the
    /// deadline-budgeted retries) fail over to the next shard in order —
    /// availability over placement determinism, counted in
    /// `dar_cluster_degraded_routes_total`; shards already marked Down
    /// are skipped without touching a socket. Structured server errors
    /// (`rejected` rows, `degraded` shards) are returned to the caller
    /// unchanged: re-sending bad data elsewhere would just fail again,
    /// and rerouting around a *reachable* shard would double-apply when
    /// it was merely slow. The sequence number is only consumed on
    /// success, so a failed call can simply be retried.
    ///
    /// # Errors
    /// A structured shard error, or the last transport error once every
    /// shard has been tried.
    pub fn ingest(&mut self, rows: &[Vec<f64>]) -> io::Result<u64> {
        let n = self.shards.len();
        let seq = self.next_seq;
        let home = ((seq - 1) % n as u64) as usize;
        let mut last_err = None;
        for attempt in 0..n {
            let idx = (home + attempt) % n;
            let request = Request::ShardIngest { seq, rows: rows.to_vec() };
            match self.shard_request(idx, &request) {
                Ok(response) => {
                    if response.get("applied").and_then(Json::as_bool) == Some(false) {
                        metrics().dup_acks.inc();
                    }
                    if attempt > 0 {
                        metrics().degraded_routes.inc();
                    }
                    self.board.acked(idx, seq, rows.len() as u64);
                    self.next_seq += 1;
                    self.dirty = true;
                    self.routed_batches += 1;
                    self.routed_tuples += rows.len() as u64;
                    metrics().batches_routed.inc();
                    metrics().tuples_routed.add(rows.len() as u64);
                    return Ok(self.routed_tuples);
                }
                Err(e) if is_shard_reply(&e) => return Err(e),
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or_else(|| io::Error::other("no shards configured")))
    }

    /// The merged engine, re-merging first if ingest has happened since
    /// the last merge (or if the last view was degraded and shard health
    /// changed since): obtain one parsed snapshot per shard *in shard
    /// order* (order shapes the merged forest and is part of the
    /// deterministic contract) and rebuild via
    /// [`DarEngine::merge_parsed_snapshots`].
    ///
    /// A shard's snapshot is **reused from cache** when its acked
    /// watermark has not moved since the last pull: batches reach shards
    /// only through this coordinator, so an unmoved watermark means
    /// unchanged content, and the pull, unseal, and parse are all
    /// skipped (`dar_cluster_snapshot_reuses_total`). In steady state —
    /// ingest touching a subset of shards between queries — only the
    /// shards that actually advanced are re-pulled. Shards actually
    /// pulled have their footer verified and must cover everything they
    /// acknowledged.
    ///
    /// With [`ClusterConfig::allow_partial`], shards that are Down or
    /// whose pull fails are skipped and the answer carries a degraded
    /// [`Coverage`]; at least one shard must contribute. Integrity
    /// failures are never waived: a *reachable* shard holding fewer
    /// tuples than it acknowledged fails the merge regardless, because a
    /// silently incomplete "full" answer is worse than no answer.
    ///
    /// # Errors
    /// Shard transport failures (with `allow_partial`: of every shard), a
    /// snapshot whose checksum footer fails, a footer proving an
    /// acknowledged batch is missing, or mismatched shard partitionings.
    pub fn ensure_merged(&mut self) -> io::Result<(Arc<SharedEngine>, Coverage)> {
        let health_epoch = self.board.epoch();
        if !self.dirty {
            if let Some(view) = &self.merged {
                // A full view stays valid until ingest dirties it; a
                // degraded one is also invalidated by any health
                // transition, so recovered shards re-enter the answer.
                if !view.coverage.degraded || view.health_epoch == health_epoch {
                    return Ok((Arc::clone(&view.shared), view.coverage.clone()));
                }
            }
        }
        let t = Instant::now();
        let total_shards = self.shards.len();
        let pool = dar_par::ThreadPool::resolve(self.config.engine.threads);
        let mut snaps = Vec::with_capacity(total_shards);
        let mut covered_tuples = 0u64;
        let mut expected_total = 0u64;
        let mut live = 0usize;
        let mut first_err: Option<io::Error> = None;
        for i in 0..total_shards {
            let expected = self.board.expected_tuples(i);
            expected_total += expected;
            let acked = self.board.last_acked_seq(i);
            // Reuse only for shards currently Up: the cache is a perf
            // optimization for reachable shards, not an availability
            // mechanism — serving a Suspect/Down shard's cached slice
            // would claim coverage the cluster cannot currently verify,
            // and the chaos contract requires honesty over availability.
            if self.board.state(i) == ShardHealth::Up {
                if let Some(cached) = &self.snap_cache[i] {
                    if cached.acked_seq == acked {
                        metrics().snapshot_reuses.inc();
                        snaps.push(cached.snap.clone());
                        covered_tuples += expected;
                        live += 1;
                        continue;
                    }
                }
            }
            self.snap_cache[i] = None;
            let response = match self.shard_request(i, &Request::PullSnapshot) {
                Ok(response) => response,
                Err(e) => {
                    if !self.config.allow_partial {
                        return Err(e);
                    }
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                    continue;
                }
            };
            // Binary engine snapshots ride the JSON wire base64-encoded;
            // pre-binary shards send the raw text under `snapshot`.
            let sealed: Vec<u8> = match response.get("snapshot_b64").and_then(Json::as_str) {
                Some(b64) => dar_serve::b64::decode(b64).map_err(|e| {
                    io::Error::new(io::ErrorKind::InvalidData, format!("shard {i}: {e}"))
                })?,
                None => response
                    .get("snapshot")
                    .and_then(Json::as_str)
                    .ok_or_else(|| {
                        io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("shard {i} pull_snapshot response lacks a snapshot"),
                        )
                    })?
                    .as_bytes()
                    .to_vec(),
            };
            // Wire-corruption check on unseal; the footer seq is
            // informational — it is the shard's *in-memory* watermark,
            // which a restart resets even when WAL recovery rebuilt
            // every batch.
            let (body, _) = dar_durable::unseal_bytes(&sealed).map_err(|e| {
                io::Error::new(io::ErrorKind::InvalidData, format!("shard {i}: {e}"))
            })?;
            // The restart-proof lost-data check: the shard must hold at
            // least every tuple it ever acknowledged (WAL replay restores
            // the count after a crash; a shard that comes back lighter
            // lost an acked batch, and serving rules that silently
            // exclude it is the one thing the cluster must never do).
            let tuples = response.get("tuples").and_then(Json::as_u64).unwrap_or(0);
            if tuples < expected {
                return Err(io::Error::other(format!(
                    "shard {i} ({}) holds {tuples} tuples but acknowledged {expected}: \
                     an acknowledged batch is missing",
                    self.shards[i].addr
                )));
            }
            let snap = dar_engine::snapshot::parse_snapshot_bytes(body, &pool).map_err(|e| {
                io::Error::new(io::ErrorKind::InvalidData, format!("shard {i} snapshot: {e}"))
            })?;
            metrics().snapshot_pulls.inc();
            self.snap_cache[i] = Some(CachedSnap { acked_seq: acked, snap: snap.clone() });
            snaps.push(snap);
            covered_tuples += expected;
            live += 1;
        }
        if live == 0 {
            return Err(first_err.unwrap_or_else(|| io::Error::other("no live shards")));
        }
        let degraded = live < total_shards;
        let epoch_base = self.rounds;
        let engine =
            DarEngine::merge_parsed_snapshots(snaps, epoch_base, self.config.engine.clone())
                .map_err(|e| io::Error::other(format!("merge: {e}")))?;
        if degraded {
            metrics().partial_merges.inc();
        } else {
            self.rounds += 1;
        }
        let coverage = Coverage {
            degraded,
            live_shards: live,
            total_shards,
            covered_tuples,
            expected_tuples: expected_total,
        };
        let merged = Arc::new(SharedEngine::new(engine));
        self.merged = Some(MergedView {
            shared: Arc::clone(&merged),
            coverage: coverage.clone(),
            health_epoch,
        });
        self.dirty = false;
        metrics().merges.inc();
        metrics().merge_ns.observe_duration(t.elapsed());
        Ok((merged, coverage))
    }

    /// Answers a rule query from the merged engine (merging first if
    /// needed), plus the [`Coverage`] the answer was computed under. A
    /// full-coverage outcome is exactly what the equivalent single engine
    /// would produce from the merged summary — same deterministic rule
    /// order, same epoch numbering.
    ///
    /// # Errors
    /// Merge failures (see [`Coordinator::ensure_merged`]) or query
    /// validation errors.
    pub fn query(&mut self, query: &RuleQuery) -> io::Result<(QueryOutcome, Coverage)> {
        let (merged, coverage) = self.ensure_merged()?;
        let outcome = merged.query(query).map_err(|e| io::Error::other(format!("query: {e}")))?;
        Ok((outcome, coverage))
    }

    /// The merged epoch's cluster summaries (merging first if needed).
    ///
    /// # Errors
    /// Merge failures.
    pub fn clusters(&mut self) -> io::Result<(u64, Vec<ClusterSummary>, Coverage)> {
        let (merged, coverage) = self.ensure_merged()?;
        let (epoch, clusters) = merged.clusters();
        Ok((epoch, clusters, coverage))
    }

    /// Serializes the merged epoch (merging first if needed): `(bytes,
    /// epoch, tuples, coverage)`.
    ///
    /// # Errors
    /// Merge or serialization failures.
    pub fn snapshot(&mut self) -> io::Result<(Vec<u8>, u64, u64, Coverage)> {
        let (merged, coverage) = self.ensure_merged()?;
        let (bytes, epoch, tuples) =
            merged.snapshot().map_err(|e| io::Error::other(format!("snapshot: {e}")))?;
        Ok((bytes, epoch, tuples, coverage))
    }

    /// Passes an explicit window seal through to every shard, in shard
    /// order. The coordinator keeps no window state of its own — windows
    /// live on shards started with `--window-batches` — so this is pure
    /// pass-through; it marks the merged engine dirty because sealing
    /// changes what the shards snapshot next. Subscriptions are *not*
    /// proxied: churn subscribers attach to shards directly.
    ///
    /// Always strict, even with `allow_partial`: sealing a subset of
    /// shards would desynchronize the cluster's window positions.
    ///
    /// # Errors
    /// Shard transport failures, or a shard's structured error verbatim
    /// (e.g. `unsupported` from a shard that is not windowed).
    pub fn advance(&mut self) -> io::Result<Vec<(String, Json)>> {
        let mut responses = Vec::with_capacity(self.shards.len());
        for i in 0..self.shards.len() {
            let response = self.shard_request(i, &Request::Advance)?;
            responses.push((self.shards[i].addr.clone(), response));
        }
        self.dirty = true;
        // A window seal changes what a shard snapshots *without* moving
        // its acked watermark — the one event that breaks the cache key's
        // "unmoved watermark means unchanged content" invariant.
        for slot in &mut self.snap_cache {
            *slot = None;
        }
        Ok(responses)
    }

    /// The SON exact-verification pass for one query outcome: ship the
    /// merged clusters and each rule's positions to every shard, let each
    /// re-read its own WAL and count matches over its disjoint slice, and
    /// sum. Because the shards partition the relation, the sums are the
    /// *exact* global frequencies of each rule's cluster combination —
    /// the second scan of Savasere–Omiecinski–Navathe, without raw
    /// tuples ever crossing the wire.
    ///
    /// Returns `(rows_rescanned, per_rule_counts)`; `rows_rescanned` is
    /// summed across shards, so a value below the merged engine's tuple
    /// count reveals a shard whose WAL no longer retains its full history.
    ///
    /// Always strict: exactness requires every shard, so callers should
    /// skip the rescan for degraded answers.
    ///
    /// # Errors
    /// Shard failures, or a shard whose count vector does not match the
    /// rule count (a protocol violation).
    pub fn rescan(&mut self, outcome: &QueryOutcome) -> io::Result<(u64, Vec<u64>)> {
        // Shipped as base64 persist-v2 binary; shards sniff (raw v1 text
        // can never decode as base64, so old and new servers coexist).
        let pool = dar_par::ThreadPool::resolve(self.config.engine.threads);
        let clusters_text =
            mining::persist::encode_clusters(outcome.artifacts.graph.clusters(), &pool)
                .map(|bytes| dar_serve::b64::encode(&bytes))
                .map_err(|e| io::Error::other(format!("clusters: {e}")))?;
        let rules: Vec<Vec<usize>> = outcome
            .rules
            .iter()
            .map(|r| {
                let mut positions: Vec<usize> =
                    r.antecedent.iter().chain(r.consequent.iter()).copied().collect();
                positions.sort_unstable();
                positions.dedup();
                positions
            })
            .collect();
        let mut total_rows = 0u64;
        let mut totals = vec![0u64; rules.len()];
        for i in 0..self.shards.len() {
            let request =
                Request::ShardRescan { clusters: clusters_text.clone(), rules: rules.clone() };
            let response = self.shard_request(i, &request)?;
            let rows_scanned = response.get("rows_scanned").and_then(Json::as_u64).unwrap_or(0);
            let counts: Vec<u64> = match response.get("counts") {
                Some(Json::Arr(items)) => items.iter().filter_map(Json::as_u64).collect(),
                _ => Vec::new(),
            };
            if counts.len() != totals.len() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "shard {i} returned {} counts for {} rules",
                        counts.len(),
                        totals.len()
                    ),
                ));
            }
            total_rows += rows_scanned;
            for (t, c) in totals.iter_mut().zip(&counts) {
                *t += c;
            }
        }
        metrics().rescans.inc();
        Ok((total_rows, totals))
    }

    /// Whether the SON rescan is enabled for this coordinator.
    pub fn rescan_enabled(&self) -> bool {
        self.config.rescan
    }

    /// Per-shard info, in shard order — never fails: shards marked Down
    /// (and live shards whose stats request fails) report the
    /// coordinator's cached watermarks with `live == false`, so `stats`
    /// keeps working while shards are dead.
    pub fn shard_infos(&mut self) -> Vec<ShardInfo> {
        (0..self.shards.len())
            .map(|i| {
                let cached = |this: &Coordinator| ShardInfo {
                    addr: this.shards[i].addr.clone(),
                    health: this.board.state(i),
                    live: false,
                    tuples: this.board.expected_tuples(i),
                    last_seq: this.board.last_acked_seq(i),
                    degraded: false,
                    last_acked_seq: this.board.last_acked_seq(i),
                    expected_tuples: this.board.expected_tuples(i),
                };
                if self.board.state(i) == ShardHealth::Down {
                    return cached(self);
                }
                match self.shard_request(i, &Request::ShardStats) {
                    Ok(stats) => ShardInfo {
                        addr: self.shards[i].addr.clone(),
                        health: self.board.state(i),
                        live: true,
                        tuples: stats.get("tuples").and_then(Json::as_u64).unwrap_or(0),
                        last_seq: stats.get("last_seq").and_then(Json::as_u64).unwrap_or(0),
                        degraded: stats.get("degraded").and_then(Json::as_bool).unwrap_or(false),
                        last_acked_seq: self.board.last_acked_seq(i),
                        expected_tuples: self.board.expected_tuples(i),
                    },
                    Err(_) => cached(self),
                }
            })
            .collect()
    }

    /// Completed full-coverage merge rounds.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// The configuration this coordinator was connected with.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }
}

/// Whether an error is a shard's structured reply (the shard is
/// reachable and refused), as opposed to a transport failure or one of
/// the coordinator's own synthetic codes (`shard-down`, `deadline`).
fn is_shard_reply(e: &io::Error) -> bool {
    ServerError::of(e).is_some_and(|se| !matches!(se.code.as_str(), "shard-down" | "deadline"))
}

/// Starts the health prober unless disabled
/// ([`ClusterConfig::probe_interval`] of zero). The prober retests
/// non-Up shards on its own short-timeout connections: a shard rejoins
/// (Up) only when a `shard_stats` probe succeeds, agrees on the row
/// width, and reports at least every acknowledged tuple; a reachable
/// shard that lost acknowledged data is forced to stay Down.
fn spawn_prober(config: &ClusterConfig, board: &Arc<HealthBoard>, width: u64) -> Option<Prober> {
    if config.probe_interval.is_zero() {
        return None;
    }
    let stop = Arc::new(AtomicBool::new(false));
    let ctx = ProberCtx {
        addrs: config.shards.clone(),
        board: Arc::clone(board),
        stop: Arc::clone(&stop),
        interval: config.probe_interval,
        timeout: config.probe_timeout.max(Duration::from_millis(1)),
        width,
    };
    let handle = std::thread::Builder::new()
        .name("dar-cluster-prober".into())
        .spawn(move || prober_loop(&ctx))
        .ok()?;
    Some(Prober { stop, handle: Some(handle) })
}

struct ProberCtx {
    addrs: Vec<String>,
    board: Arc<HealthBoard>,
    stop: Arc<AtomicBool>,
    interval: Duration,
    timeout: Duration,
    width: u64,
}

fn prober_loop(ctx: &ProberCtx) {
    while !ctx.stop.load(Ordering::SeqCst) {
        for (i, addr) in ctx.addrs.iter().enumerate() {
            if ctx.stop.load(Ordering::SeqCst) {
                return;
            }
            if ctx.board.state(i) == ShardHealth::Up {
                continue;
            }
            probe(ctx, i, addr);
        }
        // Sleep in short slices so drop-time shutdown stays prompt.
        let mut remaining = ctx.interval;
        while !remaining.is_zero() && !ctx.stop.load(Ordering::SeqCst) {
            let slice = remaining.min(Duration::from_millis(25));
            std::thread::sleep(slice);
            remaining = remaining.saturating_sub(slice);
        }
    }
}

fn probe(ctx: &ProberCtx, i: usize, addr: &str) {
    metrics().probes.inc();
    let stats = Client::connect(addr, ctx.timeout).and_then(|mut c| c.shard_stats());
    match stats {
        Ok(stats) => {
            let width = stats.get("width").and_then(Json::as_u64).unwrap_or(0);
            let tuples = stats.get("tuples").and_then(Json::as_u64).unwrap_or(0);
            // Rejoin is verified: right partitioning, and the tuple count
            // covers every batch this shard ever acknowledged (WAL replay
            // restores it across restarts). A shard that came back
            // lighter lost acked data and must stay Down.
            if width == ctx.width && tuples >= ctx.board.expected_tuples(i) {
                if ctx.board.record_success(i) {
                    metrics().rejoins.inc();
                }
            } else {
                ctx.board.force_down(i);
            }
        }
        Err(_) => {
            ctx.board.record_failure(i);
        }
    }
}
