//! Global observability handles for the cluster layer (`dar_cluster_*`).

use dar_obs::{global, Counter, Histogram};
use std::sync::OnceLock;

/// The coordinator metric family.
pub(crate) struct ClusterMetrics {
    /// `dar_cluster_batches_routed_total`: batches acknowledged by a shard.
    pub batches_routed: Counter,
    /// `dar_cluster_tuples_routed_total`: tuples inside those batches.
    pub tuples_routed: Counter,
    /// `dar_cluster_merges_total`: snapshot-merge rounds performed.
    pub merges: Counter,
    /// `dar_cluster_merge_ns`: wall time of one pull-and-merge round
    /// (snapshot pulls included — that is the latency a cold query pays).
    pub merge_ns: Histogram,
    /// `dar_cluster_shard_failures_total`: transport-level failures talking
    /// to a shard (after retries), whatever the coordinator did about it.
    pub shard_failures: Counter,
    /// `dar_cluster_degraded_routes_total`: batches that landed on a
    /// different shard than their deterministic home because the home
    /// shard was unreachable.
    pub degraded_routes: Counter,
    /// `dar_cluster_rescans_total`: SON verify passes fanned to shards.
    pub rescans: Counter,
    /// `dar_cluster_dup_acks_total`: shard acks that reported the batch as
    /// a duplicate (`applied=false`) — retried deliveries that the shard
    /// watermark suppressed.
    pub dup_acks: Counter,
    /// `dar_cluster_fast_fails_total`: requests refused locally because
    /// the target shard was marked Down — no socket was touched.
    pub fast_fails: Counter,
    /// `dar_cluster_probes_total`: background health probes sent.
    pub probes: Counter,
    /// `dar_cluster_rejoins_total`: Down shards verified (tuple count
    /// covers every acknowledged batch) and marked Up again.
    pub rejoins: Counter,
    /// `dar_cluster_partial_merges_total`: merge rounds that served from a
    /// strict subset of shards (degraded answers).
    pub partial_merges: Counter,
    /// `dar_cluster_snapshot_pulls_total`: shard snapshots actually
    /// pulled, unsealed, and parsed during merge rounds.
    pub snapshot_pulls: Counter,
    /// `dar_cluster_snapshot_reuses_total`: shard snapshots served from
    /// the coordinator's parsed cache because the shard's acked watermark
    /// had not moved — no pull, no parse.
    pub snapshot_reuses: Counter,
}

/// The cached handles.
pub(crate) fn metrics() -> &'static ClusterMetrics {
    static METRICS: OnceLock<ClusterMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = global();
        ClusterMetrics {
            batches_routed: r.counter("dar_cluster_batches_routed_total"),
            tuples_routed: r.counter("dar_cluster_tuples_routed_total"),
            merges: r.counter("dar_cluster_merges_total"),
            merge_ns: r.histogram("dar_cluster_merge_ns"),
            shard_failures: r.counter("dar_cluster_shard_failures_total"),
            degraded_routes: r.counter("dar_cluster_degraded_routes_total"),
            rescans: r.counter("dar_cluster_rescans_total"),
            dup_acks: r.counter("dar_cluster_dup_acks_total"),
            fast_fails: r.counter("dar_cluster_fast_fails_total"),
            probes: r.counter("dar_cluster_probes_total"),
            rejoins: r.counter("dar_cluster_rejoins_total"),
            partial_merges: r.counter("dar_cluster_partial_merges_total"),
            snapshot_pulls: r.counter("dar_cluster_snapshot_pulls_total"),
            snapshot_reuses: r.counter("dar_cluster_snapshot_reuses_total"),
        }
    })
}

/// The per-shard request-latency histogram, labelled by shard index —
/// created at connect time so every shard's series exists from the start.
pub(crate) fn shard_request_ns(shard: usize) -> Histogram {
    global().histogram_with("dar_cluster_shard_request_ns", &[("shard", &shard.to_string())])
}
