//! Per-shard health tracking: the lock-free board the request path, the
//! background prober, and the stats verb all share.
//!
//! Each shard is in one of three states:
//!
//! * **Up** — requests route to it normally;
//! * **Suspect** — at least one recent transport failure; requests still
//!   route (the failure may have been a blip), but the prober watches it;
//! * **Down** — [`HealthBoard::down_after`] consecutive transport
//!   failures; requests *fast-fail* without touching the socket, so a
//!   dead shard costs callers nothing per request, and only the prober
//!   (on its own cadence and short timeout) keeps testing it.
//!
//! Rejoin is verified, not assumed: the prober only marks a Down shard Up
//! again once a `shard_stats` probe succeeds **and** the shard holds at
//! least every tuple it ever acknowledged (WAL replay restores the count
//! across restarts). A shard that comes back lighter lost an acked batch
//! and stays Down — serving rules that silently exclude acknowledged data
//! is the one thing the cluster must never do.
//!
//! Every state transition bumps a generation counter
//! ([`HealthBoard::epoch`]); the coordinator re-merges a degraded answer
//! when the generation moved, so recovered shards flow back into serving
//! without polling every shard per query.

use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, Ordering};

/// One shard's health, as the coordinator currently believes it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardHealth {
    /// Healthy: requests route normally.
    Up,
    /// Recent transport failure; still serving, watched by the prober.
    Suspect,
    /// Unreachable (or integrity-failed): requests fast-fail.
    Down,
}

impl ShardHealth {
    /// The wire/stats label.
    pub fn as_str(self) -> &'static str {
        match self {
            ShardHealth::Up => "up",
            ShardHealth::Suspect => "suspect",
            ShardHealth::Down => "down",
        }
    }

    fn from_u8(v: u8) -> ShardHealth {
        match v {
            0 => ShardHealth::Up,
            1 => ShardHealth::Suspect,
            _ => ShardHealth::Down,
        }
    }

    fn as_u8(self) -> u8 {
        match self {
            ShardHealth::Up => 0,
            ShardHealth::Suspect => 1,
            ShardHealth::Down => 2,
        }
    }
}

/// One shard's slot on the board.
struct Slot {
    state: AtomicU8,
    /// Consecutive transport failures since the last success.
    failures: AtomicU32,
    /// The highest coordinator batch seq this shard acknowledged.
    last_acked_seq: AtomicU64,
    /// Tuples the shard must hold: its count at handshake plus every
    /// batch it acknowledged since (the restart-proof lost-ack bound).
    expected_tuples: AtomicU64,
}

/// The shared health board: one slot per shard, all atomics, so the
/// coordinator's request path, the prober thread, and stats readers never
/// contend on a lock.
pub struct HealthBoard {
    slots: Vec<Slot>,
    /// Bumped on every state transition; consumers cache the value and
    /// re-examine the board only when it moved.
    epoch: AtomicU64,
    /// Consecutive failures that demote Suspect to Down.
    down_after: u32,
}

impl HealthBoard {
    /// A board of `shards` slots, all Up, with the given demotion bound
    /// (clamped to at least 1).
    pub fn new(shards: usize, down_after: u32) -> HealthBoard {
        HealthBoard {
            slots: (0..shards)
                .map(|_| Slot {
                    state: AtomicU8::new(ShardHealth::Up.as_u8()),
                    failures: AtomicU32::new(0),
                    last_acked_seq: AtomicU64::new(0),
                    expected_tuples: AtomicU64::new(0),
                })
                .collect(),
            epoch: AtomicU64::new(0),
            down_after: down_after.max(1),
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the board has no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The shard's current state.
    pub fn state(&self, shard: usize) -> ShardHealth {
        ShardHealth::from_u8(self.slots[shard].state.load(Ordering::SeqCst))
    }

    /// The transition generation: moves on every state change.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Shards not currently Down (Up and Suspect both still serve).
    pub fn live_count(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| ShardHealth::from_u8(s.state.load(Ordering::SeqCst)) != ShardHealth::Down)
            .count()
    }

    /// Records a transport failure: Up demotes to Suspect immediately,
    /// and `down_after` consecutive failures demote to Down. Returns the
    /// state after the transition.
    pub fn record_failure(&self, shard: usize) -> ShardHealth {
        let slot = &self.slots[shard];
        let failures = slot.failures.fetch_add(1, Ordering::SeqCst) + 1;
        let next =
            if failures >= self.down_after { ShardHealth::Down } else { ShardHealth::Suspect };
        self.transition(shard, next);
        next
    }

    /// Records a successful exchange: the failure streak resets and the
    /// shard is Up. Returns `true` when this was a state change (a
    /// recovery), which callers may want to log or count.
    pub fn record_success(&self, shard: usize) -> bool {
        self.slots[shard].failures.store(0, Ordering::SeqCst);
        self.transition(shard, ShardHealth::Up)
    }

    /// Forces a shard Down regardless of its failure streak — used when a
    /// probe *reaches* the shard but integrity verification fails (the
    /// shard holds fewer tuples than it acknowledged).
    pub fn force_down(&self, shard: usize) {
        self.slots[shard].failures.store(self.down_after, Ordering::SeqCst);
        self.transition(shard, ShardHealth::Down);
    }

    fn transition(&self, shard: usize, next: ShardHealth) -> bool {
        let prev = self.slots[shard].state.swap(next.as_u8(), Ordering::SeqCst);
        let changed = prev != next.as_u8();
        if changed {
            self.epoch.fetch_add(1, Ordering::SeqCst);
        }
        changed
    }

    /// Publishes the shard's acknowledgement watermarks (monotone: the
    /// stored values only move up).
    pub fn publish(&self, shard: usize, last_acked_seq: u64, expected_tuples: u64) {
        let slot = &self.slots[shard];
        slot.last_acked_seq.fetch_max(last_acked_seq, Ordering::SeqCst);
        slot.expected_tuples.fetch_max(expected_tuples, Ordering::SeqCst);
    }

    /// Adds newly acknowledged tuples to the shard's expected count and
    /// raises its acked-seq watermark.
    pub fn acked(&self, shard: usize, seq: u64, tuples: u64) {
        let slot = &self.slots[shard];
        slot.last_acked_seq.fetch_max(seq, Ordering::SeqCst);
        slot.expected_tuples.fetch_add(tuples, Ordering::SeqCst);
    }

    /// The highest coordinator batch seq the shard acknowledged.
    pub fn last_acked_seq(&self, shard: usize) -> u64 {
        self.slots[shard].last_acked_seq.load(Ordering::SeqCst)
    }

    /// The tuples the shard must hold to cover everything it acknowledged.
    pub fn expected_tuples(&self, shard: usize) -> u64 {
        self.slots[shard].expected_tuples.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failures_demote_through_suspect_to_down_and_success_recovers() {
        let board = HealthBoard::new(2, 3);
        assert_eq!(board.state(0), ShardHealth::Up);
        assert_eq!(board.live_count(), 2);
        assert_eq!(board.record_failure(0), ShardHealth::Suspect);
        assert_eq!(board.record_failure(0), ShardHealth::Suspect);
        assert_eq!(board.record_failure(0), ShardHealth::Down);
        assert_eq!(board.state(0), ShardHealth::Down);
        assert_eq!(board.live_count(), 1);
        assert_eq!(board.state(1), ShardHealth::Up, "slots are independent");
        assert!(board.record_success(0), "recovery is a transition");
        assert_eq!(board.state(0), ShardHealth::Up);
        // The streak reset: demotion needs a full new streak.
        assert_eq!(board.record_failure(0), ShardHealth::Suspect);
    }

    #[test]
    fn epoch_moves_only_on_state_changes() {
        let board = HealthBoard::new(1, 2);
        let e0 = board.epoch();
        assert!(!board.record_success(0), "Up to Up is not a transition");
        assert_eq!(board.epoch(), e0);
        board.record_failure(0); // Up -> Suspect
        let e1 = board.epoch();
        assert!(e1 > e0);
        board.record_failure(0); // Suspect -> Down
        let e2 = board.epoch();
        assert!(e2 > e1);
        board.force_down(0); // Down -> Down: no transition
        assert_eq!(board.epoch(), e2);
        board.record_success(0); // Down -> Up
        assert!(board.epoch() > e2);
    }

    #[test]
    fn watermarks_are_monotone_and_accumulate() {
        let board = HealthBoard::new(1, 3);
        board.publish(0, 5, 100);
        board.publish(0, 3, 50); // stale publish cannot regress
        assert_eq!(board.last_acked_seq(0), 5);
        assert_eq!(board.expected_tuples(0), 100);
        board.acked(0, 6, 40);
        assert_eq!(board.last_acked_seq(0), 6);
        assert_eq!(board.expected_tuples(0), 140);
    }
}
