//! Coordinator configuration.

use dar_engine::EngineConfig;
use dar_serve::Backoff;
use std::time::Duration;

/// Everything the coordinator needs to know: where the shards are, how to
/// talk to them, and the engine configuration the merged summary is mined
/// under.
///
/// **Determinism contract:** [`ClusterConfig::engine`] must match the
/// configuration the shards were started with (`dar serve` flags). The
/// merged engine re-runs Phase II over the combined clusters; a different
/// metric, support fraction, or clique cap here would mine different
/// rules than the equivalent single server.
#[derive(Clone)]
pub struct ClusterConfig {
    /// Shard addresses (`host:port`), in routing order. The order is part
    /// of the deterministic contract: batch `seq` routes to shard
    /// `(seq - 1) mod n`, and snapshots merge in this order.
    pub shards: Vec<String>,
    /// Per-shard connection read/write timeout.
    pub timeout: Duration,
    /// Retry policy for transient shard failures (`overloaded`,
    /// `degraded`, connection resets). Retries are safe: `shard_ingest`
    /// is idempotent under the coordinator's sequence numbers.
    pub backoff: Backoff,
    /// When set, every query's rules are verified with a SON-style exact
    /// rescan fanned back to the shards (each re-reads its own WAL), and
    /// the summed exact frequencies ride along in the query response.
    /// Requires shards started with `--wal-path`.
    pub rescan: bool,
    /// The engine configuration for the merged coordinator engine — must
    /// mirror the shards' (and the single server it should be equivalent
    /// to).
    pub engine: EngineConfig,
    /// Worker pool size of the coordinator front-end.
    pub threads: usize,
    /// Bounded accept queue depth of the front-end; a full queue refuses
    /// new connections with a structured `overloaded` error.
    pub queue_depth: usize,
    /// Per-client-connection read timeout.
    pub read_timeout: Duration,
    /// Per-client-connection write timeout.
    pub write_timeout: Duration,
    /// Whether the wire verb `shutdown` may stop the coordinator.
    pub allow_remote_shutdown: bool,
    /// Optional Prometheus exposition address for the global `dar-obs`
    /// registry (coordinator-side metrics).
    pub metrics_addr: Option<String>,
    /// The coordinator's default rule query: knobs a `query` request does
    /// not send fall back to these (set from CLI flags like `--measure`
    /// and `--top-k`). The merged engine ranks with the same pipeline as
    /// a single server, so ranked answers stay byte-identical across
    /// shard layouts.
    pub base_query: mining::RuleQuery,
    /// Serve partial answers when shards are down: queries merge the live
    /// shards' snapshots and carry an explicit coverage annotation
    /// (`degraded:true`, live/total shard counts, tuple coverage). Off by
    /// default — a down shard then fails the query, as before. Also
    /// permits connecting with unreachable shards (at least one must
    /// respond, to agree the row width).
    pub allow_partial: bool,
    /// Cadence of the background health prober that retests Suspect and
    /// Down shards (short-timeout `shard_stats`) and verifies rejoin
    /// (tuple count covers everything acknowledged) before marking a
    /// shard Up again. Zero disables the prober — shards then only
    /// recover when a request happens to reach them.
    pub probe_interval: Duration,
    /// Connect/read timeout of one health probe — deliberately much
    /// shorter than [`ClusterConfig::timeout`], so probing a dead shard
    /// stays cheap.
    pub probe_timeout: Duration,
    /// Hard wall-clock budget for one shard request *including* all
    /// retries, socket waits, and backoff sleeps — the bound on how long
    /// a blackholed (accepting but silent) shard can stall a caller.
    pub deadline: Duration,
    /// Consecutive transport failures that demote a shard from Suspect to
    /// Down (fast-fail).
    pub down_after: u32,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            shards: Vec::new(),
            timeout: Duration::from_secs(30),
            backoff: Backoff::default(),
            rescan: false,
            engine: EngineConfig::default(),
            threads: 4,
            queue_depth: 64,
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(30),
            allow_remote_shutdown: true,
            metrics_addr: None,
            base_query: mining::RuleQuery::default(),
            allow_partial: false,
            probe_interval: Duration::from_millis(500),
            probe_timeout: Duration::from_millis(250),
            deadline: Duration::from_secs(10),
            down_after: 3,
        }
    }
}
