//! The coordinator front-end: a std-only threaded TCP server speaking the
//! ordinary `dar-serve` client protocol, so existing clients point at a
//! coordinator unchanged.
//!
//! Same shape as `dar_serve::Server` — one acceptor behind a bounded
//! `sync_channel`, a fixed worker pool, refuse-not-queue backpressure,
//! graceful shutdown via an atomic flag plus a self-connection — but each
//! request resolves against the [`Coordinator`] (under a mutex: the
//! coordinator's own work per request is a round trip or two; the heavy
//! lifting happens on the shards and inside the merged engine).

use crate::coordinator::Coordinator;
use dar_serve::json::{self, Json};
use dar_serve::protocol::{self, Request};
use dar_serve::ServerError;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

struct ShutdownSignal {
    flag: AtomicBool,
    addr: SocketAddr,
}

impl ShutdownSignal {
    fn is_set(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }

    fn trigger(&self) {
        if self.flag.swap(true, Ordering::SeqCst) {
            return;
        }
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(250));
    }
}

struct WorkerCtx {
    coordinator: Arc<Mutex<Coordinator>>,
    shutdown: Arc<ShutdownSignal>,
    requests: Arc<AtomicU64>,
    errors: Arc<AtomicU64>,
    read_timeout: Duration,
    write_timeout: Duration,
    allow_remote_shutdown: bool,
    base_query: mining::RuleQuery,
}

/// The coordinator front-end's entry point.
pub struct CoordinatorServer;

impl CoordinatorServer {
    /// Binds `addr` and starts serving the client protocol over
    /// `coordinator` (which must already be connected to its shards).
    /// Returns immediately with a handle; the server runs on background
    /// threads until [`CoordinatorHandle::shutdown`] or a wire `shutdown`.
    ///
    /// # Errors
    /// Bind failures.
    pub fn start(coordinator: Coordinator, addr: &str) -> io::Result<CoordinatorHandle> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let cfg = coordinator.config();
        let threads = cfg.threads.max(1);
        let queue_depth = cfg.queue_depth.max(1);
        let read_timeout = cfg.read_timeout;
        let write_timeout = cfg.write_timeout;
        let allow_remote_shutdown = cfg.allow_remote_shutdown;
        let metrics_addr = cfg.metrics_addr.clone();
        let base_query = cfg.base_query.clone();
        let coordinator = Arc::new(Mutex::new(coordinator));
        let shutdown = Arc::new(ShutdownSignal { flag: AtomicBool::new(false), addr: local_addr });
        let requests = Arc::new(AtomicU64::new(0));
        let errors = Arc::new(AtomicU64::new(0));

        let (tx, rx) = std::sync::mpsc::sync_channel::<TcpStream>(queue_depth);
        let rx = Arc::new(Mutex::new(rx));

        let mut workers = Vec::with_capacity(threads);
        for worker_id in 0..threads {
            let rx = Arc::clone(&rx);
            let ctx = WorkerCtx {
                coordinator: Arc::clone(&coordinator),
                shutdown: Arc::clone(&shutdown),
                requests: Arc::clone(&requests),
                errors: Arc::clone(&errors),
                read_timeout,
                write_timeout,
                allow_remote_shutdown,
                base_query: base_query.clone(),
            };
            workers.push(
                std::thread::Builder::new()
                    .name(format!("dar-cluster-worker-{worker_id}"))
                    .spawn(move || worker_loop(&rx, &ctx))?,
            );
        }

        let acceptor = {
            let shutdown = Arc::clone(&shutdown);
            std::thread::Builder::new().name("dar-cluster-acceptor".into()).spawn(move || {
                accept_loop(&listener, &tx, &shutdown, write_timeout);
            })?
        };

        let exposer = match &metrics_addr {
            Some(addr) => Some(dar_obs::MetricsExposer::bind(addr.as_str())?),
            None => None,
        };

        Ok(CoordinatorHandle {
            addr: local_addr,
            coordinator,
            shutdown,
            acceptor: Some(acceptor),
            workers,
            exposer,
        })
    }
}

/// A handle to a running coordinator front-end.
pub struct CoordinatorHandle {
    addr: SocketAddr,
    coordinator: Arc<Mutex<Coordinator>>,
    shutdown: Arc<ShutdownSignal>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    exposer: Option<dar_obs::MetricsExposer>,
}

impl CoordinatorHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The coordinator, for in-process driving alongside the server.
    pub fn coordinator(&self) -> &Arc<Mutex<Coordinator>> {
        &self.coordinator
    }

    /// Triggers graceful shutdown (idempotent).
    pub fn shutdown(&self) {
        self.shutdown.trigger();
    }

    /// Waits for every thread to exit. Call [`CoordinatorHandle::shutdown`]
    /// first — or let a wire `shutdown` arrive — or this blocks.
    pub fn join(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if let Some(mut exposer) = self.exposer.take() {
            exposer.shutdown();
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    tx: &std::sync::mpsc::SyncSender<TcpStream>,
    shutdown: &ShutdownSignal,
    write_timeout: Duration,
) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shutdown.is_set() {
                    break;
                }
                continue;
            }
        };
        if shutdown.is_set() {
            break;
        }
        match tx.try_send(stream) {
            Ok(()) => {}
            Err(TrySendError::Full(stream)) => refuse(stream, write_timeout),
            Err(TrySendError::Disconnected(_)) => break,
        }
    }
}

fn refuse(stream: TcpStream, write_timeout: Duration) {
    let _ = stream.set_write_timeout(Some(write_timeout));
    let mut writer = BufWriter::new(stream);
    let line = protocol::error_response("overloaded", "accept queue is full, retry later").encode();
    let _ = writeln!(writer, "{line}");
    let _ = writer.flush();
}

fn worker_loop(rx: &Mutex<Receiver<TcpStream>>, ctx: &WorkerCtx) {
    loop {
        let stream = match rx.lock() {
            Ok(guard) => guard.recv(),
            Err(poisoned) => poisoned.into_inner().recv(),
        };
        match stream {
            Ok(stream) => {
                let _ = serve_connection(stream, ctx);
            }
            Err(_) => break,
        }
    }
}

fn serve_connection(stream: TcpStream, ctx: &WorkerCtx) -> io::Result<()> {
    stream.set_read_timeout(Some(ctx.read_timeout))?;
    stream.set_write_timeout(Some(ctx.write_timeout))?;
    let reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    for line in reader.lines() {
        let line = match line {
            Ok(line) => line,
            Err(_) => break,
        };
        if line.trim().is_empty() {
            continue;
        }
        let (response, shutdown_after) = handle_line(&line, ctx);
        writeln!(writer, "{}", response.encode())?;
        writer.flush()?;
        if shutdown_after {
            ctx.shutdown.trigger();
            break;
        }
    }
    Ok(())
}

fn handle_line(line: &str, ctx: &WorkerCtx) -> (Json, bool) {
    ctx.requests.fetch_add(1, Ordering::Relaxed);
    let request = match json::parse(line) {
        Ok(value) => match Request::from_json_with(&value, &ctx.base_query) {
            Ok(request) => request,
            Err(message) => return (error(ctx, "bad-request", &message), false),
        },
        Err(e) => return (error(ctx, "bad-json", &e.to_string()), false),
    };
    match request {
        Request::Ingest { rows } => {
            let count = rows.len() as u64;
            let result = lock(&ctx.coordinator).ingest(&rows);
            match result {
                Ok(total) => (protocol::ingest_response(count, total), false),
                Err(e) => (shard_error(ctx, &e), false),
            }
        }
        Request::Query { query } => {
            let mut coordinator = lock(&ctx.coordinator);
            match coordinator.query(&query) {
                Ok((outcome, coverage)) => {
                    let mut response = protocol::query_response(&outcome);
                    // The rescan rides along as *extra* keys so the base
                    // response stays byte-compatible with a single server
                    // when rescan is off. A degraded answer skips it: the
                    // SON pass needs every shard to be exact.
                    if coordinator.rescan_enabled() && !coverage.degraded {
                        match coordinator.rescan(&outcome) {
                            Ok((rows_rescanned, counts)) => {
                                if let Json::Obj(pairs) = &mut response {
                                    pairs.push((
                                        "rescan_rows".into(),
                                        Json::Num(rows_rescanned as f64),
                                    ));
                                    pairs.push((
                                        "rescan_counts".into(),
                                        Json::Arr(
                                            counts.iter().map(|&c| Json::Num(c as f64)).collect(),
                                        ),
                                    ));
                                }
                            }
                            Err(e) => return (shard_error(ctx, &e), false),
                        }
                    }
                    annotate(&mut response, &coverage);
                    (response, false)
                }
                Err(e) => (shard_error(ctx, &e), false),
            }
        }
        Request::Clusters => match lock(&ctx.coordinator).clusters() {
            Ok((epoch, clusters, coverage)) => {
                let mut response = protocol::clusters_response(epoch, &clusters);
                annotate(&mut response, &coverage);
                (response, false)
            }
            Err(e) => (shard_error(ctx, &e), false),
        },
        Request::Snapshot => match lock(&ctx.coordinator).snapshot() {
            Ok((_, epoch, tuples, coverage)) => {
                let mut response = protocol::snapshot_response(epoch, tuples, None);
                annotate(&mut response, &coverage);
                (response, false)
            }
            Err(e) => (shard_error(ctx, &e), false),
        },
        Request::Stats => {
            let mut coordinator = lock(&ctx.coordinator);
            let (routed_batches, routed_tuples) = coordinator.routed();
            let rounds = coordinator.rounds();
            let live_shards = coordinator.live_shards();
            let shards = coordinator.shard_infos();
            drop(coordinator);
            let shard_items: Vec<Json> = shards
                .iter()
                .map(|s| {
                    Json::obj(vec![
                        ("addr", Json::Str(s.addr.clone())),
                        ("health", Json::Str(s.health.as_str().into())),
                        ("live", Json::Bool(s.live)),
                        ("tuples", Json::Num(s.tuples as f64)),
                        ("last_seq", Json::Num(s.last_seq as f64)),
                        ("degraded", Json::Bool(s.degraded)),
                        ("last_acked_seq", Json::Num(s.last_acked_seq as f64)),
                        ("expected_tuples", Json::Num(s.expected_tuples as f64)),
                    ])
                })
                .collect();
            let response = Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("verb", Json::Str("stats".into())),
                (
                    "coordinator",
                    Json::obj(vec![
                        ("shards", Json::Num(shard_items.len() as f64)),
                        ("live_shards", Json::Num(live_shards as f64)),
                        ("rounds", Json::Num(rounds as f64)),
                        ("routed_batches", Json::Num(routed_batches as f64)),
                        ("routed_tuples", Json::Num(routed_tuples as f64)),
                        ("requests", Json::Num(ctx.requests.load(Ordering::Relaxed) as f64)),
                        ("errors", Json::Num(ctx.errors.load(Ordering::Relaxed) as f64)),
                    ]),
                ),
                ("shards", Json::Arr(shard_items)),
            ]);
            (response, false)
        }
        Request::Advance => match lock(&ctx.coordinator).advance() {
            Ok(responses) => {
                let shard_items: Vec<Json> = responses
                    .into_iter()
                    .map(|(addr, mut response)| {
                        if let Json::Obj(pairs) = &mut response {
                            pairs.insert(0, ("addr".into(), Json::Str(addr)));
                        }
                        response
                    })
                    .collect();
                let response = Json::obj(vec![
                    ("ok", Json::Bool(true)),
                    ("verb", Json::Str("advance".into())),
                    ("shards", Json::Arr(shard_items)),
                ]);
                (response, false)
            }
            Err(e) => (shard_error(ctx, &e), false),
        },
        Request::Subscribe { .. } => (
            error(
                ctx,
                "unsupported",
                "subscriptions attach to shards directly; the coordinator serves merged queries",
            ),
            false,
        ),
        Request::Metrics => (protocol::metrics_response(), false),
        Request::Shutdown => {
            if ctx.allow_remote_shutdown {
                (protocol::shutdown_response(), true)
            } else {
                (error(ctx, "forbidden", "remote shutdown is disabled"), false)
            }
        }
        Request::ShardIngest { .. }
        | Request::PullSnapshot
        | Request::ShardStats
        | Request::ShardRescan { .. } => (
            error(ctx, "bad-request", "shard verbs are spoken by shards; this is a coordinator"),
            false,
        ),
    }
}

fn lock(coordinator: &Mutex<Coordinator>) -> std::sync::MutexGuard<'_, Coordinator> {
    coordinator.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Adds the coverage annotation to a degraded response; full-coverage
/// responses are left untouched (byte-identical to a healthy cluster's).
fn annotate(response: &mut Json, coverage: &crate::coordinator::Coverage) {
    if coverage.degraded {
        protocol::annotate_degraded(
            response,
            coverage.live_shards as u64,
            coverage.total_shards as u64,
            coverage.covered_tuples,
            coverage.expected_tuples,
        );
    }
}

/// Re-emits a shard's structured error verbatim (so a client sees the
/// same `degraded`/`rejected` codes it would talking to the shard
/// directly); wraps transport failures as `shard`.
fn shard_error(ctx: &WorkerCtx, e: &io::Error) -> Json {
    ctx.errors.fetch_add(1, Ordering::Relaxed);
    match ServerError::of(e) {
        Some(se) => protocol::error_response(&se.code, &se.message),
        None => protocol::error_response("shard", &e.to_string()),
    }
}

fn error(ctx: &WorkerCtx, code: &str, message: &str) -> Json {
    ctx.errors.fetch_add(1, Ordering::Relaxed);
    protocol::error_response(code, message)
}
