//! Multi-threaded hammer tests: many threads pounding the same handles
//! must produce *exact* totals — the registry's whole claim is that hot
//! paths are relaxed atomics, not locks, and lose nothing under
//! contention. Run under `--release` to give the race a real chance.

use dar_obs::{Counter, Gauge, Histogram, Registry};
use std::sync::Arc;
use std::thread;

const THREADS: usize = 8;
const OPS_PER_THREAD: u64 = 50_000;

#[test]
fn counter_totals_are_exact_under_contention() {
    let registry = Arc::new(Registry::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let registry = Arc::clone(&registry);
            thread::spawn(move || {
                // Half the threads resolve the handle through the registry
                // (shared series), half clone a cached handle — both paths
                // must hit the same underlying atomic.
                let counter: Counter = registry.counter("dar_hammer_ops_total");
                for i in 0..OPS_PER_THREAD {
                    if (i + t as u64).is_multiple_of(2) {
                        counter.inc();
                    } else {
                        counter.add(1);
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("hammer thread panicked");
    }
    assert_eq!(
        registry.counter("dar_hammer_ops_total").get(),
        THREADS as u64 * OPS_PER_THREAD,
        "counter lost updates under contention"
    );
}

#[test]
fn histogram_count_sum_and_extremes_are_exact_under_contention() {
    let histogram = Histogram::new();
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let histogram = histogram.clone();
            thread::spawn(move || {
                // Thread t observes t*OPS+1 ..= (t+1)*OPS, so the global
                // extremes and sum have closed forms.
                let base = t as u64 * OPS_PER_THREAD;
                for i in 1..=OPS_PER_THREAD {
                    histogram.observe(base + i);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("hammer thread panicked");
    }
    let s = histogram.snapshot();
    let n = THREADS as u64 * OPS_PER_THREAD;
    assert_eq!(s.count, n, "histogram lost observations");
    assert_eq!(s.sum, n * (n + 1) / 2, "histogram sum drifted");
    assert_eq!(s.min, 1);
    assert_eq!(s.max, n);
    assert_eq!(s.buckets.iter().sum::<u64>(), n, "bucket totals drifted");
    let p50 = s.quantile(0.50);
    assert!(p50 >= s.min && p50 <= s.max);
}

#[test]
fn gauge_sums_signed_deltas_exactly() {
    let gauge = Gauge::new();
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let gauge = gauge.clone();
            thread::spawn(move || {
                let delta: i64 = if t.is_multiple_of(2) { 3 } else { -2 };
                for _ in 0..OPS_PER_THREAD {
                    gauge.add(delta);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("hammer thread panicked");
    }
    // 4 threads of +3 and 4 of -2 per op: net +1 per thread pair per op.
    let half = THREADS as i64 / 2;
    let expected = half * OPS_PER_THREAD as i64 * 3 - half * OPS_PER_THREAD as i64 * 2;
    assert_eq!(gauge.get(), expected);
}

#[test]
fn registration_races_converge_to_one_series() {
    let registry = Arc::new(Registry::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let registry = Arc::clone(&registry);
            thread::spawn(move || {
                // Every thread races to create the same labelled series,
                // then increments through its own resolved handle.
                let c = registry.counter_with("dar_hammer_race_total", &[("verb", "query")]);
                for _ in 0..1_000 {
                    c.inc();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("hammer thread panicked");
    }
    assert_eq!(
        registry.counter_with("dar_hammer_race_total", &[("verb", "query")]).get(),
        THREADS as u64 * 1_000,
        "racing registrations split the series"
    );
    assert_eq!(registry.snapshot().len(), 1, "duplicate series registered");
}
