//! Property tests for the log2-bucket histogram: quantile estimates must
//! always stay within the recorded extremes and within the bounds of the
//! bucket holding the requested rank — the "no sampling bias, only
//! bucket-width rounding" contract.

use dar_obs::{bucket_bounds, bucket_index, Histogram};
use proptest::prelude::*;

/// The bucket a rank falls in, recomputed independently of the
/// implementation under test.
fn bucket_of_rank(buckets: &[u64], rank: u64) -> usize {
    let mut cum = 0u64;
    for (i, &c) in buckets.iter().enumerate() {
        cum += c;
        if cum >= rank {
            return i;
        }
    }
    buckets.len() - 1
}

#[test]
fn quantiles_stay_within_min_max_and_bucket_bounds() {
    proptest!(|(samples in prop::collection::vec(0u64..1u64 << 40, 1..200),
                qx in 0u32..101)| {
        let q = qx as f64 / 100.0;
        let h = Histogram::new();
        for &v in &samples {
            h.observe(v);
        }
        let s = h.snapshot();
        let estimate = s.quantile(q);

        let min = *samples.iter().min().unwrap();
        let max = *samples.iter().max().unwrap();
        prop_assert!(s.min == min && s.max == max,
            "snapshot extremes {}..{} vs true {min}..{max}", s.min, s.max);
        prop_assert!(estimate >= min && estimate <= max,
            "q={q}: estimate {estimate} outside recorded [{min}, {max}]");

        // The estimate must live inside the bucket that contains the
        // nearest-rank sample.
        let rank = ((q * samples.len() as f64).ceil() as u64).clamp(1, samples.len() as u64);
        let bucket = bucket_of_rank(&s.buckets, rank);
        let (lo, hi) = bucket_bounds(bucket);
        prop_assert!(estimate >= lo && estimate <= hi,
            "q={q}: estimate {estimate} outside rank-{rank} bucket {bucket} = [{lo}, {hi}]");
    });
}

#[test]
fn bucket_counts_and_sum_reflect_every_observation() {
    proptest!(|(samples in prop::collection::vec(0u64..1u64 << 40, 0..200))| {
        let h = Histogram::new();
        for &v in &samples {
            h.observe(v);
        }
        let s = h.snapshot();
        prop_assert_eq!(s.count, samples.len() as u64);
        prop_assert_eq!(s.sum, samples.iter().sum::<u64>());
        prop_assert_eq!(s.buckets.iter().sum::<u64>(), samples.len() as u64);
        for &v in &samples {
            prop_assert!(s.buckets[bucket_index(v)] > 0,
                "bucket for observed value {v} is empty");
        }
    });
}

#[test]
fn quantiles_are_monotone_in_q() {
    proptest!(|(samples in prop::collection::vec(0u64..1u64 << 40, 1..200))| {
        let h = Histogram::new();
        for &v in &samples {
            h.observe(v);
        }
        let s = h.snapshot();
        let mut prev = 0u64;
        for qx in 0..=20 {
            let est = s.quantile(qx as f64 / 20.0);
            prop_assert!(est >= prev, "quantile not monotone at q={}", qx as f64 / 20.0);
            prev = est;
        }
    });
}
