//! A minimal plain-TCP exposer for Prometheus text format.
//!
//! One acceptor thread; each connection gets the current rendering of the
//! global registry wrapped in a tiny HTTP/1.0 response, then the socket
//! closes. That satisfies both real scrapers (`GET /metrics`) and a bare
//! `printf '' | nc host port` — the request line, if any, is drained with
//! a short read timeout and otherwise ignored.

use crate::registry::global;
use std::io::{Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How long to wait for (and drain) a scraper's request bytes before
/// responding anyway.
const REQUEST_DRAIN_TIMEOUT: Duration = Duration::from_millis(250);

/// A background TCP listener serving the global registry's Prometheus
/// text rendering to every connection. Stopped by [`shutdown`] or drop.
///
/// [`shutdown`]: MetricsExposer::shutdown
#[derive(Debug)]
pub struct MetricsExposer {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
}

impl MetricsExposer {
    /// Binds `addr` (e.g. `127.0.0.1:9100`, or port 0 for ephemeral) and
    /// starts serving.
    pub fn bind(addr: impl ToSocketAddrs) -> std::io::Result<MetricsExposer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let acceptor = std::thread::Builder::new()
            .name("dar-obs-exposer".to_string())
            .spawn(move || accept_loop(listener, flag))?;
        Ok(MetricsExposer { addr, stop, acceptor: Some(acceptor) })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Stops the acceptor thread and waits for it to exit. Idempotent.
    pub fn shutdown(&mut self) {
        let Some(acceptor) = self.acceptor.take() else {
            return;
        };
        self.stop.store(true, Ordering::SeqCst);
        // Unblock accept() by connecting to ourselves.
        let _ = TcpStream::connect(self.addr);
        let _ = acceptor.join();
    }
}

impl Drop for MetricsExposer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, stop: Arc<AtomicBool>) {
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        // Scrapes are cheap (render + one write); serve inline rather
        // than spawning per connection.
        let _ = serve_scrape(stream);
    }
}

fn serve_scrape(mut stream: TcpStream) -> std::io::Result<()> {
    let _ = stream.set_read_timeout(Some(REQUEST_DRAIN_TIMEOUT));
    // Drain whatever request the client sends (an HTTP GET, or nothing at
    // all from `nc`); stop at the header terminator, EOF, or timeout.
    let mut buf = [0u8; 1024];
    let mut seen: Vec<u8> = Vec::new();
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                seen.extend_from_slice(&buf[..n]);
                if seen.windows(4).any(|w| w == b"\r\n\r\n") || seen.len() >= 8192 {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let body = global().render_prometheus();
    let response = format!(
        "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    let _ = stream.flush();
    let _ = stream.shutdown(Shutdown::Both);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scrape(addr: std::net::SocketAddr, request: &[u8]) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(request).expect("write");
        let _ = stream.shutdown(Shutdown::Write);
        let mut out = String::new();
        stream.read_to_string(&mut out).expect("read");
        out
    }

    #[test]
    fn exposer_serves_prometheus_text_to_http_and_raw_clients() {
        global().counter("dar_obs_test_scrapes_total").inc();
        let mut exposer = MetricsExposer::bind("127.0.0.1:0").expect("bind");
        let addr = exposer.addr();

        let http = scrape(addr, b"GET /metrics HTTP/1.0\r\n\r\n");
        assert!(http.starts_with("HTTP/1.0 200 OK"), "{http}");
        assert!(http.contains("text/plain"), "{http}");
        assert!(http.contains("# TYPE dar_obs_test_scrapes_total counter"), "{http}");

        // A bare client that sends nothing still gets the payload.
        let raw = scrape(addr, b"");
        assert!(raw.contains("dar_obs_test_scrapes_total"), "{raw}");

        exposer.shutdown();
        exposer.shutdown(); // idempotent
        assert!(
            TcpStream::connect(addr).map(|_| ()).is_err() || {
                // The OS may briefly accept to a dead listener backlog; a
                // second connect must fail once the queue drains.
                std::thread::sleep(Duration::from_millis(50));
                TcpStream::connect(addr).is_err()
            }
        );
    }
}
