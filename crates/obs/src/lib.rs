//! # dar-obs
//!
//! Workspace-wide observability for the DAR mining stack: a process-global
//! metrics registry, lightweight span timers, and a bounded event journal
//! — all `std`-only, dependency-free, and lock-free on every hot path.
//!
//! The paper's adaptive Phase I (threshold raises, tree rebuilds, outlier
//! paging) and summary-only Phase II (graph build, maximal-clique
//! enumeration) are exactly the stages whose costs decide whether the
//! engine is "as fast as the hardware allows" — this crate makes them
//! visible without perturbing them:
//!
//! * [`Counter`] / [`Gauge`] — one relaxed atomic op per update; totals
//!   are exact under arbitrary contention.
//! * [`Histogram`] — fixed-boundary log2 buckets (65 of them, one per
//!   bit length) with exact `sum`/`count`/`min`/`max`, so p50/p99 are
//!   derivable from the full population with no sampling bias and no
//!   lock. Recording is a handful of relaxed atomics.
//! * [`Span`] — an RAII guard feeding a histogram with elapsed
//!   nanoseconds: `let _t = obs::span("phase1.insert");`.
//! * [`Registry`] — get-or-create handles by `(name, labels)`; the
//!   registration map is behind an `RwLock`, but call sites cache their
//!   handles (typically in `OnceLock` statics), so steady state never
//!   touches it.
//! * event journal — a bounded ring buffer of structured events
//!   (rebuilds, threshold raises, degraded-mode flips, snapshot seals)
//!   rendered as JSON; see [`Registry::event`].
//!
//! Exposition, two ways:
//!
//! * [`Registry::render_prometheus`] — Prometheus text format (`# TYPE`
//!   lines, deterministic sorted name/label order), served over plain TCP
//!   by [`MetricsExposer`] so any scraper (or `nc`) can poll it;
//! * [`Registry::render_json`] — a deterministic JSON encoding of every
//!   metric plus the event journal, embedded by `dar-serve`'s `metrics`
//!   verb and dumped by `dar session --metrics-out`.
//!
//! Naming convention: `dar_<crate>_<name>_<unit>` — e.g.
//! `dar_birch_rebuilds_total`, `dar_serve_request_ns`. See `DESIGN.md`
//! §10 "Observability".

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod expose;
mod journal;
mod metric;
mod registry;
mod span;

pub use expose::MetricsExposer;
pub use journal::Event;
pub use metric::{
    bucket_bounds, bucket_index, Counter, Gauge, Histogram, HistogramSnapshot, NUM_BUCKETS,
};
pub use registry::{global, MetricSnapshot, MetricValue, Registry};
pub use span::Span;

/// Starts an RAII span timer feeding the global histogram `name` (created
/// on first use). Elapsed wall-clock nanoseconds are recorded when the
/// guard drops.
///
/// Convenience for cold paths; hot paths should cache the [`Histogram`]
/// handle and use [`Span::new`] so no registry lookup happens per call.
pub fn span(name: &str) -> Span {
    Span::new(global().histogram(name))
}

/// Records a structured event in the global journal. Convenience for
/// [`Registry::event`] on [`global`].
pub fn event(kind: &str, fields: &[(&str, &str)]) {
    global().event(kind, fields);
}
