//! The three metric primitives: counters, gauges, and log2-bucket
//! histograms. All are cheap cloneable handles (`Arc` inside) whose
//! updates are single relaxed atomic operations — safe to hammer from any
//! number of threads with exact totals.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A monotonically increasing counter. Totals are exact under contention
/// (every update is one `fetch_add`).
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A fresh counter at zero (detached from any registry).
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current total.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a signed value that can move both ways (e.g. a 0/1 mode flag
/// or a resident-entries level).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// A fresh gauge at zero (detached from any registry).
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: one per bit length of a `u64` value
/// (bucket 0 holds zeros, bucket `i` holds values in `[2^(i-1), 2^i - 1]`,
/// bucket 64 tops out at `u64::MAX`).
pub const NUM_BUCKETS: usize = 65;

/// The bucket a value lands in: its bit length.
pub fn bucket_index(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// The inclusive `[lower, upper]` value range of bucket `i`.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    match i {
        0 => (0, 0),
        64 => (1 << 63, u64::MAX),
        _ => (1 << (i - 1), (1 << i) - 1),
    }
}

#[derive(Debug)]
struct HistogramInner {
    buckets: [AtomicU64; NUM_BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for HistogramInner {
    fn default() -> Self {
        HistogramInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// A fixed-boundary log2-bucket histogram over `u64` values (typically
/// nanoseconds). Recording touches a handful of relaxed atomics — no
/// mutex, no allocation, no sampling: every observation lands in its
/// bucket, so quantiles derived from a [`HistogramSnapshot`] reflect the
/// full population (bucket-bounded, bias-free), unlike a reservoir.
#[derive(Clone, Debug, Default)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    /// A fresh empty histogram (detached from any registry).
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one observation.
    pub fn observe(&self, value: u64) {
        let inner = &*self.0;
        inner.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        inner.sum.fetch_add(value, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        inner.min.fetch_min(value, Ordering::Relaxed);
        inner.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a duration as nanoseconds (saturating on the absurd).
    pub fn observe_duration(&self, elapsed: Duration) {
        self.observe(elapsed.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// A point-in-time copy of the buckets and summary statistics.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let inner = &*self.0;
        let buckets = std::array::from_fn(|i| inner.buckets[i].load(Ordering::Relaxed));
        let count = inner.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            buckets,
            sum: inner.sum.load(Ordering::Relaxed),
            count,
            min: if count == 0 { 0 } else { inner.min.load(Ordering::Relaxed) },
            max: inner.max.load(Ordering::Relaxed),
        }
    }
}

/// A consistent-enough point-in-time copy of a [`Histogram`], with
/// quantile estimation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (see [`bucket_bounds`]).
    pub buckets: [u64; NUM_BUCKETS],
    /// Sum of all observed values.
    pub sum: u64,
    /// Number of observations.
    pub count: u64,
    /// Smallest observed value (0 when empty).
    pub min: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
}

impl HistogramSnapshot {
    /// Estimates the `q`-quantile (`q` in `[0, 1]`) by nearest rank with
    /// linear interpolation inside the rank's bucket. The estimate is
    /// always within the recorded `[min, max]` and within the bounds of
    /// the bucket containing that rank — there is no sampling bias to
    /// correct for, only bucket-width rounding.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if cum + c >= rank {
                // Tighten the bucket's bounds by the recorded extremes:
                // every sample in this bucket lies in both ranges.
                let (lo, hi) = bucket_bounds(i);
                let lo = lo.max(self.min);
                let hi = hi.min(self.max);
                let frac = (rank - cum) as f64 / c as f64;
                let est = lo as f64 + (hi - lo) as f64 * frac;
                return (est as u64).clamp(lo, hi);
            }
            cum += c;
        }
        self.max
    }

    /// The mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_geometry_is_consistent() {
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1023, 1024, u64::MAX / 2, u64::MAX] {
            let i = bucket_index(v);
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= v && v <= hi, "value {v} outside bucket {i} = [{lo}, {hi}]");
        }
        // Buckets tile the whole u64 range without gaps or overlap.
        for i in 1..NUM_BUCKETS {
            assert_eq!(bucket_bounds(i).0, bucket_bounds(i - 1).1 + 1, "gap before bucket {i}");
        }
        assert_eq!(bucket_bounds(NUM_BUCKETS - 1).1, u64::MAX);
    }

    #[test]
    fn histogram_tracks_sum_count_min_max() {
        let h = Histogram::new();
        assert_eq!(h.snapshot().quantile(0.5), 0, "empty histogram reports zero");
        for v in [5u64, 9, 1000, 3] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 1017);
        assert_eq!(s.min, 3);
        assert_eq!(s.max, 1000);
        assert!((s.mean() - 254.25).abs() < 1e-9);
    }

    #[test]
    fn identical_samples_yield_exact_quantiles() {
        let h = Histogram::new();
        for _ in 0..100 {
            h.observe(7_000);
        }
        let s = h.snapshot();
        // min == max pins the interpolation to the exact value.
        assert_eq!(s.quantile(0.0), 7_000);
        assert_eq!(s.quantile(0.5), 7_000);
        assert_eq!(s.quantile(0.99), 7_000);
    }

    #[test]
    fn quantiles_are_ordered_and_bounded() {
        let h = Histogram::new();
        for ms in 1..=100u64 {
            h.observe(ms * 1_000_000);
        }
        let s = h.snapshot();
        let p50 = s.quantile(0.50);
        let p99 = s.quantile(0.99);
        assert!(p50 <= p99);
        assert!(s.min <= p50 && p99 <= s.max);
        // Log2 buckets around 50ms span [2^25, 2^26) ns; the interpolated
        // estimate should land near the true median.
        assert!((45_000_000..=55_000_000).contains(&p50), "p50 = {p50}");
        assert!((95_000_000..=100_000_000).contains(&p99), "p99 = {p99}");
    }

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        let g = Gauge::new();
        g.set(5);
        g.add(-2);
        assert_eq!(g.get(), 3);
    }
}
