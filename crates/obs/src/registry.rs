//! The metrics registry: get-or-create handles by `(name, labels)`, and
//! deterministic renderings of everything registered.
//!
//! The map itself sits behind an `RwLock`, but it is touched only at
//! handle creation (call sites cache handles, typically in `OnceLock`
//! statics) and at exposition time — never on a metric's hot path.

use crate::journal::{Event, Journal};
use crate::metric::{bucket_bounds, Counter, Gauge, Histogram};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{OnceLock, RwLock};

/// Registration key: metric name plus its label pairs, sorted by label
/// name so the same logical series always maps to the same entry.
type MetricKey = (String, Vec<(String, String)>);

#[derive(Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// How many journal events the bounded ring keeps before evicting the
/// oldest.
const JOURNAL_CAPACITY: usize = 1024;

/// A metrics registry: a sorted map of named series plus the event
/// journal. Most code uses the process-global one via [`global`].
pub struct Registry {
    metrics: RwLock<BTreeMap<MetricKey, Metric>>,
    journal: Journal,
}

impl Default for Registry {
    fn default() -> Registry {
        Registry::new()
    }
}

/// The process-global registry every instrumented crate records into.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

impl Registry {
    /// An empty registry (tests; production uses [`global`]).
    pub fn new() -> Registry {
        Registry { metrics: RwLock::new(BTreeMap::new()), journal: Journal::new(JOURNAL_CAPACITY) }
    }

    fn get_or_insert(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Metric,
    ) -> Metric {
        let mut key: MetricKey = (
            name.to_string(),
            labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect(),
        );
        key.1.sort();
        {
            let map = self.metrics.read().unwrap_or_else(|p| p.into_inner());
            if let Some(metric) = map.get(&key) {
                return metric.clone();
            }
        }
        let mut map = self.metrics.write().unwrap_or_else(|p| p.into_inner());
        map.entry(key).or_insert_with(make).clone()
    }

    /// Get-or-create the counter `name` (no labels).
    pub fn counter(&self, name: &str) -> Counter {
        self.counter_with(name, &[])
    }

    /// Get-or-create the counter `name` with `labels`.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        match self.get_or_insert(name, labels, || Metric::Counter(Counter::new())) {
            Metric::Counter(c) => c,
            // A name/type clash is a programming error; hand back a
            // detached counter rather than panicking in instrumentation.
            _ => Counter::new(),
        }
    }

    /// Get-or-create the gauge `name` (no labels).
    pub fn gauge(&self, name: &str) -> Gauge {
        match self.get_or_insert(name, &[], || Metric::Gauge(Gauge::new())) {
            Metric::Gauge(g) => g,
            _ => Gauge::new(),
        }
    }

    /// Get-or-create the histogram `name` (no labels).
    pub fn histogram(&self, name: &str) -> Histogram {
        self.histogram_with(name, &[])
    }

    /// Get-or-create the histogram `name` with `labels`.
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        match self.get_or_insert(name, labels, || Metric::Histogram(Histogram::new())) {
            Metric::Histogram(h) => h,
            _ => Histogram::new(),
        }
    }

    /// Registers an externally-created histogram under `(name, labels)`,
    /// so a component can keep a private handle (its own exact series)
    /// while still exposing it. An existing registration wins (the handle
    /// already exposed stays); the returned histogram is the one now
    /// registered.
    pub fn register_histogram(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        histogram: Histogram,
    ) -> Histogram {
        match self.get_or_insert(name, labels, || Metric::Histogram(histogram)) {
            Metric::Histogram(h) => h,
            _ => Histogram::new(),
        }
    }

    /// Records a structured event in the bounded journal.
    pub fn event(&self, kind: &str, fields: &[(&str, &str)]) {
        self.journal.record(kind, fields);
    }

    /// The journal's current contents, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.journal.events()
    }

    /// A point-in-time copy of every registered series, sorted by name
    /// then labels — the deterministic order both renderers share.
    pub fn snapshot(&self) -> Vec<MetricSnapshot> {
        let map = self.metrics.read().unwrap_or_else(|p| p.into_inner());
        map.iter()
            .map(|((name, labels), metric)| MetricSnapshot {
                name: name.clone(),
                labels: labels.clone(),
                value: match metric {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                },
            })
            .collect()
    }

    /// Renders every series in Prometheus text exposition format:
    /// `# TYPE` lines per family, stable sorted name and label order,
    /// histograms as cumulative `_bucket{le=…}` series plus `_sum` and
    /// `_count`.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_family: Option<String> = None;
        for m in self.snapshot() {
            if last_family.as_deref() != Some(m.name.as_str()) {
                let kind = match m.value {
                    MetricValue::Counter(_) => "counter",
                    MetricValue::Gauge(_) => "gauge",
                    MetricValue::Histogram(_) => "histogram",
                };
                let _ = writeln!(out, "# TYPE {} {kind}", m.name);
                last_family = Some(m.name.clone());
            }
            match &m.value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "{}{} {v}", m.name, label_set(&m.labels, None));
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "{}{} {v}", m.name, label_set(&m.labels, None));
                }
                MetricValue::Histogram(h) => {
                    let mut cum = 0u64;
                    for (i, &c) in h.buckets.iter().enumerate() {
                        if c == 0 {
                            continue;
                        }
                        cum += c;
                        let le = bucket_bounds(i).1.to_string();
                        let _ = writeln!(
                            out,
                            "{}_bucket{} {cum}",
                            m.name,
                            label_set(&m.labels, Some(&le))
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{}_bucket{} {}",
                        m.name,
                        label_set(&m.labels, Some("+Inf")),
                        h.count
                    );
                    let _ = writeln!(out, "{}_sum{} {}", m.name, label_set(&m.labels, None), h.sum);
                    let _ =
                        writeln!(out, "{}_count{} {}", m.name, label_set(&m.labels, None), h.count);
                }
            }
        }
        out
    }

    /// Renders every series plus the event journal as one deterministic
    /// JSON object:
    ///
    /// ```json
    /// {"metrics":[{"name":…,"labels":{…},"type":…, …}…],"events":[…]}
    /// ```
    ///
    /// Series order is sorted (name, then labels); histogram buckets are
    /// `[upper_bound, count]` pairs for the non-empty buckets only.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"metrics\":[");
        for (i, m) in self.snapshot().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            json_string(&mut out, &m.name);
            out.push_str(",\"labels\":{");
            for (j, (k, v)) in m.labels.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                json_string(&mut out, k);
                out.push(':');
                json_string(&mut out, v);
            }
            out.push('}');
            match &m.value {
                MetricValue::Counter(v) => {
                    let _ = write!(out, ",\"type\":\"counter\",\"value\":{v}");
                }
                MetricValue::Gauge(v) => {
                    let _ = write!(out, ",\"type\":\"gauge\",\"value\":{v}");
                }
                MetricValue::Histogram(h) => {
                    let _ = write!(
                        out,
                        ",\"type\":\"histogram\",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\
                         \"p50\":{},\"p99\":{},\"buckets\":[",
                        h.count,
                        h.sum,
                        h.min,
                        h.max,
                        h.quantile(0.50),
                        h.quantile(0.99)
                    );
                    let mut first = true;
                    for (b, &c) in h.buckets.iter().enumerate() {
                        if c == 0 {
                            continue;
                        }
                        if !first {
                            out.push(',');
                        }
                        first = false;
                        let _ = write!(out, "[{},{c}]", bucket_bounds(b).1);
                    }
                    out.push(']');
                }
            }
            out.push('}');
        }
        out.push_str("],\"events\":[");
        for (i, e) in self.events().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            e.write_json(&mut out);
        }
        out.push_str("]}");
        out
    }
}

/// Renders a Prometheus label set (`{a="x",le="+Inf"}` or the empty
/// string), with the optional `le` label appended last.
fn label_set(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{}\"", escape_label(v));
    }
    if let Some(le) = le {
        if !labels.is_empty() {
            out.push(',');
        }
        let _ = write!(out, "le=\"{le}\"");
    }
    out.push('}');
    out
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

/// Appends `s` as a JSON string literal (quotes included).
pub(crate) fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// One registered series at a point in time.
#[derive(Debug, Clone)]
pub struct MetricSnapshot {
    /// The series name (`dar_<crate>_<name>_<unit>`).
    pub name: String,
    /// Label pairs, sorted by label name.
    pub labels: Vec<(String, String)>,
    /// The value.
    pub value: MetricValue,
}

/// A snapshot of one metric's value.
// Snapshots are read-path values built once per scrape; the inline
// 520-byte bucket array is cheaper than an allocation per series.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum MetricValue {
    /// Counter total.
    Counter(u64),
    /// Gauge level.
    Gauge(i64),
    /// Histogram buckets + summary.
    Histogram(crate::metric::HistogramSnapshot),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_shared_by_key_and_split_by_labels() {
        let r = Registry::new();
        let a = r.counter("dar_test_shared_total");
        let b = r.counter("dar_test_shared_total");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3, "same key → same underlying counter");
        let x = r.counter_with("dar_test_labelled_total", &[("verb", "query")]);
        let y = r.counter_with("dar_test_labelled_total", &[("verb", "ingest")]);
        x.inc();
        assert_eq!(y.get(), 0, "different labels → different series");
    }

    #[test]
    fn prometheus_rendering_is_sorted_and_typed() {
        let r = Registry::new();
        r.counter("dar_b_total").add(2);
        r.gauge("dar_a_level").set(-1);
        let h = r.histogram_with("dar_c_ns", &[("verb", "query")]);
        h.observe(100);
        h.observe(3_000);
        let text = r.render_prometheus();
        let a = text.find("# TYPE dar_a_level gauge").expect("gauge family");
        let b = text.find("# TYPE dar_b_total counter").expect("counter family");
        let c = text.find("# TYPE dar_c_ns histogram").expect("histogram family");
        assert!(a < b && b < c, "families sorted by name:\n{text}");
        assert!(text.contains("dar_a_level -1"));
        assert!(text.contains("dar_b_total 2"));
        assert!(text.contains("dar_c_ns_bucket{verb=\"query\",le=\"127\"} 1"), "{text}");
        assert!(text.contains("dar_c_ns_bucket{verb=\"query\",le=\"+Inf\"} 2"), "{text}");
        assert!(text.contains("dar_c_ns_sum{verb=\"query\"} 3100"));
        assert!(text.contains("dar_c_ns_count{verb=\"query\"} 2"));
    }

    #[test]
    fn json_rendering_is_deterministic_and_escaped() {
        let r = Registry::new();
        r.counter("dar_x_total").inc();
        r.event("unit.test", &[("detail", "a \"quoted\" thing")]);
        let one = r.render_json();
        let two = r.render_json();
        assert_eq!(one, two, "same state renders identically");
        assert!(one.contains("\"name\":\"dar_x_total\""));
        assert!(one.contains("\\\"quoted\\\""), "{one}");
        assert!(one.contains("\"kind\":\"unit.test\""));
    }

    #[test]
    fn registered_private_histogram_is_exposed() {
        let r = Registry::new();
        let private = Histogram::new();
        let exposed = r.register_histogram("dar_private_ns", &[], private.clone());
        private.observe(42);
        assert_eq!(exposed.snapshot().count, 1, "same underlying series");
        assert!(r.render_prometheus().contains("dar_private_ns_count 1"));
    }
}
