//! A bounded ring-buffer journal of structured events: rebuilds,
//! threshold raises, degraded-mode flips, snapshot seals. Recording takes
//! a short mutex on a `VecDeque` — events are rare (per-rebuild, not
//! per-insert), so this is never on a hot path.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

/// One structured event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Monotonic sequence number (never reused, survives eviction).
    pub seq: u64,
    /// Milliseconds since the Unix epoch at recording time.
    pub unix_ms: u64,
    /// Event kind, dotted `crate.what` style (e.g. `birch.rebuild`).
    pub kind: String,
    /// Free-form string fields, in recording order.
    pub fields: Vec<(String, String)>,
}

impl Event {
    /// Appends this event as a JSON object to `out`.
    pub fn write_json(&self, out: &mut String) {
        let _ = write!(out, "{{\"seq\":{},\"unix_ms\":{},\"kind\":", self.seq, self.unix_ms);
        crate::registry::json_string(out, &self.kind);
        out.push_str(",\"fields\":{");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            crate::registry::json_string(out, k);
            out.push(':');
            crate::registry::json_string(out, v);
        }
        out.push_str("}}");
    }
}

/// Bounded event ring: keeps the most recent `capacity` events.
#[derive(Debug, Default)]
pub struct Journal {
    capacity: usize,
    seq: AtomicU64,
    ring: Mutex<VecDeque<Event>>,
}

impl Journal {
    /// A journal holding at most `capacity` events.
    pub fn new(capacity: usize) -> Journal {
        Journal {
            capacity,
            seq: AtomicU64::new(0),
            ring: Mutex::new(VecDeque::with_capacity(capacity.min(64))),
        }
    }

    /// Records an event, evicting the oldest if the ring is full.
    pub fn record(&self, kind: &str, fields: &[(&str, &str)]) {
        let event = Event {
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            unix_ms: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_millis().min(u64::MAX as u128) as u64)
                .unwrap_or(0),
            kind: kind.to_string(),
            fields: fields.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect(),
        };
        let mut ring = self.ring.lock().unwrap_or_else(|p| p.into_inner());
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(event);
    }

    /// The ring's current contents, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.ring.lock().unwrap_or_else(|p| p.into_inner()).iter().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_most_recent_and_sequences_monotonically() {
        let j = Journal::new(3);
        for i in 0..5 {
            j.record("test.tick", &[("i", &i.to_string())]);
        }
        let events = j.events();
        assert_eq!(events.len(), 3, "capacity bounds the ring");
        assert_eq!(events[0].seq, 2, "oldest two evicted");
        assert_eq!(events[2].seq, 4);
        assert_eq!(events[2].fields, vec![("i".to_string(), "4".to_string())]);
    }

    #[test]
    fn event_renders_as_json_object() {
        let j = Journal::new(4);
        j.record("durable.snapshot_seal", &[("seq", "7")]);
        let mut out = String::new();
        j.events()[0].write_json(&mut out);
        assert!(out.starts_with("{\"seq\":0,"), "{out}");
        assert!(out.contains("\"kind\":\"durable.snapshot_seal\""), "{out}");
        assert!(out.ends_with("\"fields\":{\"seq\":\"7\"}}"), "{out}");
    }
}
