//! RAII span timers: start a [`Span`] at the top of a phase, and its
//! elapsed wall-clock nanoseconds land in a histogram when it drops —
//! including on early returns and panics.

use crate::metric::Histogram;
use std::time::Instant;

/// An RAII timing guard. Created via [`crate::span`] (registry lookup per
/// call, fine for cold paths) or [`Span::new`] with a cached histogram
/// handle (hot paths).
#[derive(Debug)]
pub struct Span {
    histogram: Histogram,
    started: Instant,
}

impl Span {
    /// Starts timing now; records into `histogram` on drop.
    pub fn new(histogram: Histogram) -> Span {
        Span { histogram, started: Instant::now() }
    }

    /// Nanoseconds elapsed so far (the span keeps running).
    pub fn elapsed_ns(&self) -> u64 {
        self.started.elapsed().as_nanos().min(u64::MAX as u128) as u64
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.histogram.observe_duration(self.started.elapsed());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_one_observation_on_drop() {
        let h = Histogram::new();
        {
            let _t = Span::new(h.clone());
            std::hint::black_box(1 + 1);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!(s.sum, s.max, "single observation: sum == max");
    }

    #[test]
    fn span_records_even_across_early_exit() {
        fn timed(h: &Histogram, bail: bool) -> u32 {
            let _t = Span::new(h.clone());
            if bail {
                return 0;
            }
            1
        }
        let h = Histogram::new();
        timed(&h, true);
        timed(&h, false);
        assert_eq!(h.snapshot().count, 2);
    }
}
