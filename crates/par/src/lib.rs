//! # dar-par
//!
//! A std-only data-parallel runtime for the DAR pipeline: a fixed-width
//! scoped thread pool with a chunked work queue, used to parallelize both
//! mining phases *without changing any output byte*.
//!
//! The paper's decomposition makes this safe:
//!
//! * **Phase I** — the attribute partitions `X_i` are independent by
//!   construction (Dfn 4.2), so a row batch can fan out across the
//!   per-attribute-set ACF trees with one tree per task. Each tree sees the
//!   same rows in the same order as a serial scan, so the clustering is
//!   bit-identical.
//! * **Phase II** — every inter-cluster distance is a pure function of the
//!   ACF summaries (Theorem 6.1), so the O(k²) distance matrix can be
//!   partitioned by row and recombined with an ordered reduction; maximal
//!   cliques factor over connected components of the clustering graph.
//!
//! Design constraints, matching the workspace's shim-crate policy:
//!
//! * **No dependencies** beyond `dar-obs` (instrumentation) — the pool is
//!   `std::thread::scope` plus atomics.
//! * **No unsafe** — borrowed work items travel through a `Mutex`-guarded
//!   queue of `&mut` references, not raw pointers.
//! * **Panic propagation** — a panicking task panics the caller when the
//!   scope joins, never deadlocks or silently drops work.
//! * **Deterministic results** — workers tag results with their input
//!   index; the caller receives them in input order regardless of
//!   scheduling.
//!
//! Every parallel region records `dar_par_*` metrics (regions, tasks,
//! queue depth, per-region wall time labelled by region name) in the
//! process-global [`dar_obs`] registry.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod metrics;
mod pool;

pub use pool::{available_parallelism, ThreadPool};
