//! The scoped thread pool.
//!
//! The pool is deliberately minimal: it owns nothing but a worker count.
//! Every parallel region spawns scoped workers (`std::thread::scope`),
//! drains a shared chunked queue, and joins before returning — so borrowed
//! data (`&mut` ACF trees, `&` adjacency bitsets) flows into tasks without
//! `unsafe`, `'static` bounds, or channels, and a panicking task panics
//! the caller at the join. Workers tag every result with its input index
//! and the caller reassembles them in input order: scheduling is
//! non-deterministic, results never are.

use crate::metrics::{metrics, region_ns};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// The number of workers [`ThreadPool::resolve`] uses for `threads = 0`:
/// whatever parallelism the host advertises (1 when it advertises nothing).
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// A fixed-width scoped thread pool.
///
/// ```
/// use dar_par::ThreadPool;
/// let pool = ThreadPool::new(4);
/// let mut items = vec![1u64, 2, 3, 4, 5];
/// let doubled = pool.run_mut("example", &mut items, |i, x| {
///     *x *= 2;
///     (i, *x)
/// });
/// assert_eq!(items, vec![2, 4, 6, 8, 10]);
/// assert_eq!(doubled, vec![(0, 2), (1, 4), (2, 6), (3, 8), (4, 10)]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadPool {
    workers: usize,
}

impl ThreadPool {
    /// A pool with exactly `workers` workers (clamped to at least 1).
    pub fn new(workers: usize) -> Self {
        ThreadPool { workers: workers.max(1) }
    }

    /// The single-worker pool: every region runs inline on the caller's
    /// thread — the serial reference every parallel result must match.
    pub fn serial() -> Self {
        ThreadPool::new(1)
    }

    /// Resolves a configured thread count: `0` means "use the host's
    /// available parallelism", anything else is taken literally.
    pub fn resolve(threads: usize) -> Self {
        match threads {
            0 => ThreadPool::new(available_parallelism()),
            n => ThreadPool::new(n),
        }
    }

    /// The worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Whether regions run inline on the caller's thread.
    pub fn is_serial(&self) -> bool {
        self.workers == 1
    }

    /// Runs `f(index, item)` over every item of a mutable slice — one task
    /// per item, claimed from a shared queue — and returns the results in
    /// input order. This is the Phase I shape: one ACF tree per task, each
    /// task seeing the whole row batch.
    ///
    /// # Panics
    /// Re-panics on the caller's thread if any task panics.
    pub fn run_mut<T, R, F>(&self, region: &'static str, items: &mut [T], f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, &mut T) -> R + Sync,
    {
        let n = items.len();
        let (m, t0) = self.region_start(region, n);
        if self.is_serial() || n <= 1 {
            let out = items.iter_mut().enumerate().map(|(i, item)| f(i, item)).collect();
            self.region_end(region, t0);
            return out;
        }
        let queue = Mutex::new(items.iter_mut().enumerate());
        let results: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n));
        std::thread::scope(|scope| {
            for _ in 0..self.workers.min(n) {
                scope.spawn(|| {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let claimed = queue.lock().expect("queue lock").next();
                        let Some((i, item)) = claimed else { break };
                        m.queue_depth.add(-1);
                        local.push((i, f(i, item)));
                    }
                    results.lock().expect("results lock").extend(local);
                });
            }
        });
        let out = ordered(results.into_inner().expect("no live workers"), n);
        self.region_end(region, t0);
        out
    }

    /// Runs `f(index)` for `0..n`, claiming indices in chunks of `chunk`
    /// from an atomic cursor, and returns the results in index order. This
    /// is the Phase II shape: pure per-index work (a distance-matrix row,
    /// a connected component) over shared read-only state captured in `f`.
    ///
    /// # Panics
    /// Re-panics on the caller's thread if any task panics.
    pub fn map_indexed<R, F>(&self, region: &'static str, n: usize, chunk: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let chunk = chunk.max(1);
        let (m, t0) = self.region_start(region, n.div_ceil(chunk));
        if self.is_serial() || n <= chunk {
            let out = (0..n).map(&f).collect();
            self.region_end(region, t0);
            return out;
        }
        let cursor = AtomicUsize::new(0);
        let results: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n));
        std::thread::scope(|scope| {
            for _ in 0..self.workers.min(n.div_ceil(chunk)) {
                scope.spawn(|| {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if start >= n {
                            break;
                        }
                        m.queue_depth.add(-1);
                        for i in start..(start + chunk).min(n) {
                            local.push((i, f(i)));
                        }
                    }
                    results.lock().expect("results lock").extend(local);
                });
            }
        });
        let out = ordered(results.into_inner().expect("no live workers"), n);
        self.region_end(region, t0);
        out
    }

    fn region_start(
        &self,
        _region: &'static str,
        tasks: usize,
    ) -> (&'static crate::metrics::ParMetrics, Instant) {
        let m = metrics();
        m.regions.inc();
        m.tasks.add(tasks as u64);
        m.workers.set(self.workers as i64);
        m.queue_depth.set(tasks as i64);
        (m, Instant::now())
    }

    fn region_end(&self, region: &'static str, t0: Instant) {
        metrics().queue_depth.set(0);
        region_ns(region).observe_duration(t0.elapsed());
    }
}

impl Default for ThreadPool {
    /// The host's available parallelism ([`ThreadPool::resolve`] of 0).
    fn default() -> Self {
        ThreadPool::resolve(0)
    }
}

/// Reassembles index-tagged results into input order.
fn ordered<R>(mut tagged: Vec<(usize, R)>, n: usize) -> Vec<R> {
    debug_assert_eq!(tagged.len(), n, "every task must produce exactly one result");
    tagged.sort_unstable_by_key(|&(i, _)| i);
    tagged.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_zero_means_available_parallelism() {
        assert_eq!(ThreadPool::resolve(0).workers(), available_parallelism());
        assert_eq!(ThreadPool::resolve(3).workers(), 3);
        assert_eq!(ThreadPool::new(0).workers(), 1, "zero clamps to one worker");
        assert!(ThreadPool::serial().is_serial());
    }

    #[test]
    fn run_mut_mutates_every_item_and_orders_results() {
        for workers in [1, 2, 4, 8] {
            let pool = ThreadPool::new(workers);
            let mut items: Vec<u64> = (0..100).collect();
            let squares = pool.run_mut("test_run_mut", &mut items, |i, x| {
                *x += 1;
                (i as u64) * (i as u64)
            });
            assert_eq!(items, (1..=100).collect::<Vec<u64>>(), "workers={workers}");
            assert_eq!(squares, (0..100).map(|i: u64| i * i).collect::<Vec<u64>>());
        }
    }

    #[test]
    fn map_indexed_matches_serial_at_every_width_and_chunk() {
        let serial: Vec<usize> = (0..57).map(|i| i * 3 + 1).collect();
        for workers in [1, 2, 3, 8] {
            for chunk in [1, 4, 16, 64] {
                let pool = ThreadPool::new(workers);
                let got = pool.map_indexed("test_map", 57, chunk, |i| i * 3 + 1);
                assert_eq!(got, serial, "workers={workers} chunk={chunk}");
            }
        }
    }

    #[test]
    fn empty_and_single_item_regions_work() {
        let pool = ThreadPool::new(4);
        let mut empty: Vec<u8> = Vec::new();
        assert!(pool.run_mut("test_empty", &mut empty, |_, _| ()).is_empty());
        assert!(pool.map_indexed("test_empty", 0, 8, |i| i).is_empty());
        assert_eq!(pool.map_indexed("test_empty", 1, 8, |i| i + 7), vec![7]);
    }

    #[test]
    fn worker_panic_propagates_to_the_caller() {
        let result = std::panic::catch_unwind(|| {
            let pool = ThreadPool::new(4);
            pool.map_indexed("test_panic", 64, 1, |i| {
                if i == 13 {
                    panic!("task 13 failed");
                }
                i
            });
        });
        assert!(result.is_err(), "a panicking task must panic the region");
    }

    #[test]
    fn serial_worker_panic_propagates_too() {
        let result = std::panic::catch_unwind(|| {
            let mut items = vec![1, 2, 3];
            ThreadPool::serial().run_mut("test_panic", &mut items, |i, _| {
                assert_ne!(i, 2, "task 2 failed");
            });
        });
        assert!(result.is_err());
    }

    #[test]
    fn pool_regions_record_metrics() {
        let before = dar_obs::global()
            .snapshot()
            .into_iter()
            .find(|s| s.name == "dar_par_regions_total")
            .map_or(0, |s| match s.value {
                dar_obs::MetricValue::Counter(v) => v,
                _ => 0,
            });
        ThreadPool::new(2).map_indexed("test_metrics", 8, 2, |i| i);
        let snap = dar_obs::global().snapshot();
        let counter = |name: &str| {
            snap.iter()
                .filter(|s| s.name == name)
                .map(|s| match s.value {
                    dar_obs::MetricValue::Counter(v) => v,
                    _ => 0,
                })
                .sum::<u64>()
        };
        assert!(counter("dar_par_regions_total") > before);
        assert!(counter("dar_par_tasks_total") >= 4);
        assert!(
            snap.iter().any(|s| s.name == "dar_par_region_ns"
                && s.labels.iter().any(|(k, v)| k == "region" && v == "test_metrics")),
            "region-labelled wall-time histogram must be registered"
        );
    }
}
