//! Global observability handles for the thread pool (`dar_par_*`).
//!
//! Handles are cached in a `OnceLock`; the family registers eagerly on
//! first use so every `dar_par_*` series is visible in exposition (at
//! zero) before the first parallel region runs. Recording is relaxed
//! atomics only — the pool adds no locks beyond its work queue.

use dar_obs::{global, Counter, Gauge, Histogram};
use std::sync::OnceLock;

/// The pool metric family.
pub(crate) struct ParMetrics {
    /// `dar_par_regions_total`: parallel regions executed (serial
    /// fast-path regions included — the region ran, on one worker).
    pub regions: Counter,
    /// `dar_par_tasks_total`: individual tasks (items or chunks) executed
    /// across all regions.
    pub tasks: Counter,
    /// `dar_par_workers`: worker count of the most recently run region.
    pub workers: Gauge,
    /// `dar_par_queue_depth`: tasks still queued in the currently running
    /// region (0 when idle).
    pub queue_depth: Gauge,
}

/// The cached handles.
pub(crate) fn metrics() -> &'static ParMetrics {
    static METRICS: OnceLock<ParMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = global();
        ParMetrics {
            regions: r.counter("dar_par_regions_total"),
            tasks: r.counter("dar_par_tasks_total"),
            workers: r.gauge("dar_par_workers"),
            queue_depth: r.gauge("dar_par_queue_depth"),
        }
    })
}

/// Per-region wall-time histogram, labelled by region name (`phase1_batch`,
/// `graph_rows`, `cliques`, …). Looked up per region, not per task, so the
/// label-map cost is amortized over the whole fan-out.
pub(crate) fn region_ns(region: &'static str) -> Histogram {
    global().histogram_with("dar_par_region_ns", &[("region", region)])
}
