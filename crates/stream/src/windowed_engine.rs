//! A [`DarEngine`] whose Phase II queries mine only the live window
//! horizon.

use crate::window::{AdvanceOutcome, RetirePolicy, WindowSpec, WindowedForest};
use dar_core::{ClusterSummary, CoreError, Partitioning};
use dar_engine::snapshot::{parse_snapshot, parse_snapshot_bytes, write_snapshot_bytes, Snapshot};
use dar_engine::{DarEngine, EngineConfig, EngineStats, QueryOutcome};
use mining::RuleQuery;

/// What one [`WindowedEngine::ingest`] did to the window state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowedIngest {
    /// The window the batch's rows landed in.
    pub window_seq: u64,
    /// Whether the batch filled the window and advanced it.
    pub advanced: bool,
    /// Whether the advance retired a window (the horizon slid).
    pub retired: bool,
    /// The live horizon after the ingest, `(oldest seq, open seq)`.
    pub window_span: (u64, u64),
}

/// A sliding-window mining engine: a [`WindowedForest`] for Phase I plus an
/// inner [`DarEngine`] that answers Phase II queries over the live horizon
/// only.
///
/// Between retirements the inner engine ingests batches incrementally —
/// its forest holds exactly the live rows, so queries are as cheap as the
/// all-history engine's. When a window retires, the inner engine is
/// rebuilt around the merged survivors ([`DarEngine::with_forest`]) with
/// its epoch carried forward, so epochs stay monotonic across slides and
/// `s0` always reflects the live tuple count.
pub struct WindowedEngine {
    windows: WindowedForest,
    engine: DarEngine,
    config: EngineConfig,
    pool: dar_par::ThreadPool,
}

impl WindowedEngine {
    /// Creates an empty windowed engine.
    ///
    /// # Errors
    /// Rejects threshold-arity mismatches, as [`DarEngine::new`] does.
    pub fn new(
        partitioning: Partitioning,
        config: EngineConfig,
        spec: WindowSpec,
        policy: RetirePolicy,
    ) -> Result<Self, CoreError> {
        let engine = DarEngine::new(partitioning.clone(), config.clone())?;
        let thresholds = match &config.initial_thresholds {
            Some(t) => t.clone(),
            None => vec![config.birch.initial_threshold; partitioning.num_sets()],
        };
        let windows = WindowedForest::new(partitioning, &config.birch, &thresholds, spec, policy);
        let pool = dar_par::ThreadPool::resolve(config.threads);
        Ok(WindowedEngine { windows, engine, config, pool })
    }

    /// Feeds a batch into the open window and the inner engine. Advances
    /// (and possibly retires) automatically at the window boundary; a
    /// retirement rebuilds the inner engine over the merged survivors.
    /// Empty batches are no-ops at the window layer (see
    /// [`WindowedForest::ingest`]).
    ///
    /// # Errors
    /// Validation errors ([`DarEngine::ingest`]) reject the whole batch and
    /// leave both the window ring and the inner engine untouched.
    pub fn ingest(&mut self, rows: &[Vec<f64>]) -> Result<WindowedIngest, CoreError> {
        let window_seq = self.windows.open_seq();
        self.engine.ingest(rows)?;
        let advance = self.windows.ingest(rows, &self.pool);
        if let Some(a) = &advance {
            if a.retired_seq.is_some() {
                self.rebuild_engine();
            }
        }
        Ok(WindowedIngest {
            window_seq,
            advanced: advance.is_some(),
            retired: advance.is_some_and(|a| a.retired_seq.is_some()),
            window_span: self.windows.window_span(),
        })
    }

    /// Seals the open window explicitly (the `advance` verb), rebuilding
    /// the inner engine if the ring retired a window.
    pub fn advance(&mut self) -> AdvanceOutcome {
        let outcome = self.windows.advance();
        if outcome.retired_seq.is_some() {
            self.rebuild_engine();
        }
        outcome
    }

    /// Stands the inner engine back up over the merged live horizon. The
    /// epoch base carries the old engine's epoch so epochs stay monotonic;
    /// the epoch is left open, so the next query closes a fresh one over
    /// the slid horizon.
    fn rebuild_engine(&mut self) {
        let merged = self.windows.merged();
        self.engine = DarEngine::with_forest(
            merged,
            self.windows.live_tuples(),
            self.engine.epoch(),
            self.config.clone(),
        );
    }

    /// Replays one recovered WAL frame. `tag` is the window sequence the
    /// frame was logged under: the ring advances until that window is open
    /// (reconstructing explicit advances, which are logged as empty tagged
    /// frames), then non-empty rows are ingested exactly as live. Untagged
    /// frames (pre-windowing logs) ingest directly.
    ///
    /// # Errors
    /// Propagates validation errors from [`WindowedEngine::ingest`].
    pub fn replay_frame(&mut self, tag: Option<u64>, rows: &[Vec<f64>]) -> Result<(), CoreError> {
        if let Some(seq) = tag {
            while self.windows.open_seq() < seq {
                self.advance();
            }
        }
        if !rows.is_empty() {
            self.ingest(rows)?;
        }
        Ok(())
    }

    /// Answers one rule-mining query over the live horizon.
    ///
    /// # Errors
    /// Propagates arity errors from explicit density thresholds.
    pub fn query(&mut self, query: &RuleQuery) -> Result<QueryOutcome, CoreError> {
        self.engine.query(query)
    }

    /// The read-only fast path (see [`DarEngine::query_cached`]).
    ///
    /// # Errors
    /// Propagates arity errors from explicit density thresholds.
    pub fn query_cached(&self, query: &RuleQuery) -> Result<Option<QueryOutcome>, CoreError> {
        self.engine.query_cached(query)
    }

    /// The current epoch number of the inner engine.
    pub fn epoch(&self) -> u64 {
        self.engine.epoch()
    }

    /// Tuples across the live horizon.
    pub fn tuples(&self) -> u64 {
        self.windows.live_tuples()
    }

    /// The partitioning this engine mines under.
    pub fn partitioning(&self) -> &Partitioning {
        self.engine.partitioning()
    }

    /// The row width ingest validates against (see
    /// [`DarEngine::required_row_width`]).
    pub fn required_row_width(&self) -> usize {
        self.engine.required_row_width()
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        self.engine.config()
    }

    /// Inner-engine statistics.
    pub fn stats(&self) -> EngineStats {
        self.engine.stats()
    }

    /// The cluster summaries of the current epoch, closing it if needed.
    pub fn clusters(&mut self) -> &[ClusterSummary] {
        self.engine.clusters()
    }

    /// The live horizon, `(oldest live seq, open seq)`.
    pub fn window_span(&self) -> (u64, u64) {
        self.windows.window_span()
    }

    /// The window geometry.
    pub fn spec(&self) -> WindowSpec {
        self.windows.spec()
    }

    /// The retirement policy.
    pub fn policy(&self) -> RetirePolicy {
        self.windows.policy()
    }

    /// Serializes the full ring to the v2 layout — a text header line
    /// framing one embedded engine-v2 *binary* snapshot per live window,
    /// oldest first, the open window last:
    ///
    /// ```text
    /// dar-stream v2 epoch=<e> open_batches=<b> policy=<p> window_batches=<W> slots=<S> windows=<k>
    /// window seq=<s> bytes=<B>
    /// <B bytes of dar-engine v2 binary snapshot, epoch=<s> tuples=<window tuples>>
    /// …
    /// ```
    ///
    /// Each embedded body ends with the engine format's `0x0A` terminator,
    /// so the whole snapshot ends on a newline byte and the `dar-durable`
    /// seal never alters it. Restoring ([`WindowedEngine::restore`])
    /// rebuilds each window's forest from its summaries and the inner
    /// engine from their merge, so WAL replay on top reconstructs the ring
    /// exactly.
    ///
    /// # Errors
    /// Propagates serialization failures from the embedded snapshots.
    pub fn snapshot(&mut self) -> Result<Vec<u8>, CoreError> {
        let mut out = format!(
            "dar-stream v2 epoch={} open_batches={} policy={} window_batches={} slots={} windows={}\n",
            self.engine.epoch(),
            self.windows.open_batches(),
            self.windows.policy().name(),
            self.windows.spec().batches,
            self.windows.spec().slots,
            self.windows.live_windows().count(),
        )
        .into_bytes();
        let partitioning = self.engine.partitioning().clone();
        for (seq, forest, tuples) in self.windows.live_windows() {
            let mut clusters = Vec::new();
            let mut next_id = 0u32;
            for (set, acfs) in forest.extract_clusters().into_iter().enumerate() {
                for acf in acfs {
                    clusters.push(ClusterSummary { id: dar_core::ClusterId(next_id), set, acf });
                    next_id += 1;
                }
            }
            let body = write_snapshot_bytes(
                seq,
                tuples,
                &partitioning,
                &forest.thresholds(),
                &clusters,
                &self.pool,
            )?;
            out.extend_from_slice(format!("window seq={seq} bytes={}\n", body.len()).as_bytes());
            out.extend_from_slice(&body);
        }
        Ok(out)
    }

    /// An engine-v2 snapshot of the **live horizon only** — the mergeable
    /// view a cluster coordinator pulls ([`dar_engine::DarEngine`]'s own
    /// format, with no ring framing). The ring structure is deliberately
    /// absent: use [`WindowedEngine::snapshot`] for durability.
    ///
    /// # Errors
    /// Propagates serialization failures.
    pub fn horizon_snapshot(&mut self) -> Result<Vec<u8>, CoreError> {
        self.engine.snapshot()
    }

    /// Resumes a windowed engine from a [`WindowedEngine::snapshot`] body
    /// (already unsealed by the caller), sniffing the header: `dar-stream
    /// v2` frames binary engine snapshots by byte count, the pre-v2
    /// `dar-stream v1` frames text snapshots by line count. The window
    /// geometry and policy come from the header; `config` supplies
    /// everything else.
    ///
    /// # Errors
    /// Rejects malformed headers, malformed embedded snapshots, and
    /// windows whose partitionings disagree.
    pub fn restore(bytes: &[u8], config: EngineConfig) -> Result<Self, CoreError> {
        if bytes.starts_with(b"dar-stream v2 ") {
            return Self::restore_v2(bytes, config);
        }
        let text = std::str::from_utf8(bytes).map_err(|_| {
            CoreError::LayoutMismatch(
                "snapshot bytes are neither dar-stream v2 nor UTF-8 text".into(),
            )
        })?;
        Self::restore_v1(text, config)
    }

    fn restore_v2(bytes: &[u8], config: EngineConfig) -> Result<Self, CoreError> {
        let bad = |msg: String| CoreError::LayoutMismatch(msg);
        let pool = dar_par::ThreadPool::resolve(config.threads);
        let line_end = |from: usize| -> Result<usize, CoreError> {
            bytes[from..]
                .iter()
                .position(|&b| b == b'\n')
                .map(|p| from + p)
                .ok_or_else(|| bad("dar-stream snapshot truncated mid-line".into()))
        };
        let header_end = line_end(0)?;
        let header = std::str::from_utf8(&bytes[..header_end])
            .map_err(|_| bad("dar-stream header is not UTF-8".into()))?;
        let (epoch, open_batches, window_batches, slots, num_windows, policy) =
            parse_ring_header(header)?;
        let mut pos = header_end + 1;
        let mut snaps = Vec::with_capacity(num_windows);
        for i in 0..num_windows {
            if pos >= bytes.len() {
                return Err(bad(format!("missing window section {i}")));
            }
            let section_end = line_end(pos)?;
            let section = std::str::from_utf8(&bytes[pos..section_end])
                .map_err(|_| bad(format!("window section {i} is not UTF-8")))?;
            let rest = section
                .strip_prefix("window ")
                .ok_or_else(|| bad(format!("expected window line, got {section:?}")))?;
            let sfield = |key: &str| -> Result<u64, CoreError> {
                let start =
                    rest.find(key).ok_or_else(|| bad(format!("missing {key} in {section:?}")))?
                        + key.len();
                rest[start..]
                    .split_whitespace()
                    .next()
                    .unwrap_or("")
                    .parse()
                    .map_err(|_| bad(format!("bad {key} field in {section:?}")))
            };
            let seq = sfield("seq=")?;
            let body_bytes = sfield("bytes=")? as usize;
            pos = section_end + 1;
            if bytes.len() - pos < body_bytes {
                return Err(bad(format!("window {seq}: truncated embedded snapshot")));
            }
            snaps.push(parse_snapshot_bytes(&bytes[pos..pos + body_bytes], &pool)?);
            pos += body_bytes;
        }
        if pos != bytes.len() {
            return Err(bad(format!(
                "{} unexpected bytes after the last window section",
                bytes.len() - pos
            )));
        }
        Self::from_window_snaps(snaps, epoch, open_batches, window_batches, slots, policy, config)
    }

    fn restore_v1(text: &str, config: EngineConfig) -> Result<Self, CoreError> {
        let bad = |msg: String| CoreError::LayoutMismatch(msg);
        let mut lines = text.lines();
        let header = lines.next().ok_or_else(|| bad("empty dar-stream snapshot".into()))?;
        let (epoch, open_batches, window_batches, slots, num_windows, policy) =
            parse_ring_header(header)?;
        let mut snaps = Vec::with_capacity(num_windows);
        for i in 0..num_windows {
            let section = lines.next().ok_or_else(|| bad(format!("missing window section {i}")))?;
            let rest = section
                .strip_prefix("window ")
                .ok_or_else(|| bad(format!("expected window line, got {section:?}")))?;
            let sfield = |key: &str| -> Result<u64, CoreError> {
                let start =
                    rest.find(key).ok_or_else(|| bad(format!("missing {key} in {section:?}")))?
                        + key.len();
                rest[start..]
                    .split_whitespace()
                    .next()
                    .unwrap_or("")
                    .parse()
                    .map_err(|_| bad(format!("bad {key} field in {section:?}")))
            };
            let seq = sfield("seq=")?;
            let body_lines = sfield("lines=")? as usize;
            let mut body = String::new();
            for _ in 0..body_lines {
                let l = lines
                    .next()
                    .ok_or_else(|| bad(format!("window {seq}: truncated embedded snapshot")))?;
                body.push_str(l);
                body.push('\n');
            }
            snaps.push(parse_snapshot(&body)?);
        }
        Self::from_window_snaps(snaps, epoch, open_batches, window_batches, slots, policy, config)
    }

    /// Stands the ring and inner engine back up from parsed per-window
    /// snapshots (oldest first) — the common tail of both restore paths.
    fn from_window_snaps(
        snaps: Vec<Snapshot>,
        epoch: u64,
        open_batches: u64,
        window_batches: u64,
        slots: usize,
        policy: RetirePolicy,
        config: EngineConfig,
    ) -> Result<Self, CoreError> {
        let mut windows = Vec::with_capacity(snaps.len());
        let mut partitioning: Option<Partitioning> = None;
        for snap in snaps {
            match &partitioning {
                None => partitioning = Some(snap.partitioning.clone()),
                Some(p) if *p != snap.partitioning => {
                    return Err(CoreError::InvalidPartitioning(format!(
                        "window {} was built under a different partitioning",
                        snap.epoch
                    )));
                }
                Some(_) => {}
            }
            let mut forest = birch::AcfForest::with_initial_thresholds(
                snap.partitioning.clone(),
                &config.birch,
                &snap.thresholds,
            );
            for c in &snap.clusters {
                forest.insert_entry(c.set, c.acf.clone());
            }
            windows.push((snap.epoch, forest, snap.tuples));
        }
        let partitioning =
            partitioning.ok_or_else(|| CoreError::LayoutMismatch("zero windows parsed".into()))?;
        let thresholds = match &config.initial_thresholds {
            Some(t) => t.clone(),
            None => vec![config.birch.initial_threshold; partitioning.num_sets()],
        };
        let ring = WindowedForest::from_windows(
            partitioning.clone(),
            &config.birch,
            &thresholds,
            WindowSpec { batches: window_batches.max(1), slots: slots.max(1) },
            policy,
            windows,
            open_batches,
        );
        let engine =
            DarEngine::with_forest(ring.merged(), ring.live_tuples(), epoch, config.clone());
        let pool = dar_par::ThreadPool::resolve(config.threads);
        Ok(WindowedEngine { windows: ring, engine, config, pool })
    }
}

/// Parses the `dar-stream v1`/`v2` header line shared by both snapshot
/// layouts. Returns `(epoch, open_batches, window_batches, slots,
/// num_windows, policy)`.
fn parse_ring_header(
    header: &str,
) -> Result<(u64, u64, u64, usize, usize, RetirePolicy), CoreError> {
    let bad = |msg: String| CoreError::LayoutMismatch(msg);
    if !header.starts_with("dar-stream v1 ") && !header.starts_with("dar-stream v2 ") {
        return Err(bad(format!("not a dar-stream snapshot: {header:?}")));
    }
    let field = |key: &str| -> Result<u64, CoreError> {
        let start = header.find(key).ok_or_else(|| bad(format!("missing {key} in {header:?}")))?
            + key.len();
        header[start..]
            .split_whitespace()
            .next()
            .unwrap_or("")
            .parse()
            .map_err(|_| bad(format!("bad {key} field in {header:?}")))
    };
    let epoch = field("epoch=")?;
    let open_batches = field("open_batches=")?;
    let window_batches = field("window_batches=")?;
    let slots = field("slots=")? as usize;
    let num_windows = field("windows=")? as usize;
    let policy_start =
        header.find("policy=").ok_or_else(|| bad(format!("missing policy= in {header:?}")))?
            + "policy=".len();
    let policy_name = header[policy_start..].split_whitespace().next().unwrap_or("");
    let policy = RetirePolicy::parse(policy_name)
        .ok_or_else(|| bad(format!("unknown retire policy {policy_name:?}")))?;
    if num_windows == 0 {
        return Err(bad("dar-stream snapshot with zero windows".into()));
    }
    Ok((epoch, open_batches, window_batches, slots, num_windows, policy))
}
