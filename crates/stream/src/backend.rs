//! The serving-layer switch between all-history and sliding-window
//! mining.

use crate::window::AdvanceOutcome;
use crate::windowed_engine::{WindowedEngine, WindowedIngest};
use dar_core::{ClusterSummary, CoreError, Partitioning};
use dar_engine::{DarEngine, EngineConfig, EngineStats, QueryOutcome};
use mining::RuleQuery;

/// Either a classic all-history [`DarEngine`] or a sliding-window
/// [`WindowedEngine`], behind the one API `dar-serve` drives: ingest,
/// advance, query, snapshot, WAL-frame replay.
// One backend exists per server/session, so the variant size gap is
// irrelevant next to the indirection a Box would add on every call.
#[allow(clippy::large_enum_variant)]
pub enum EngineBackend {
    /// All-history mining: every ingested tuple stays in the horizon.
    Static(DarEngine),
    /// Sliding-window mining over the most recent windows only.
    Windowed(WindowedEngine),
}

impl From<DarEngine> for EngineBackend {
    fn from(engine: DarEngine) -> Self {
        EngineBackend::Static(engine)
    }
}

impl From<WindowedEngine> for EngineBackend {
    fn from(engine: WindowedEngine) -> Self {
        EngineBackend::Windowed(engine)
    }
}

impl EngineBackend {
    /// True for the windowed variant.
    pub fn is_windowed(&self) -> bool {
        matches!(self, EngineBackend::Windowed(_))
    }

    /// Feeds a batch. For the windowed backend the outcome reports window
    /// movement; the static backend always returns `None`.
    ///
    /// # Errors
    /// Validation errors reject the whole batch, leaving the backend
    /// untouched.
    pub fn ingest(&mut self, rows: &[Vec<f64>]) -> Result<Option<WindowedIngest>, CoreError> {
        match self {
            EngineBackend::Static(e) => e.ingest(rows).map(|()| None),
            EngineBackend::Windowed(e) => e.ingest(rows).map(Some),
        }
    }

    /// Seals the open window (windowed backend only).
    ///
    /// # Errors
    /// The static backend has no windows to advance.
    pub fn advance(&mut self) -> Result<AdvanceOutcome, CoreError> {
        match self {
            EngineBackend::Static(_) => Err(CoreError::LayoutMismatch(
                "advance requires a windowed engine (--window-batches)".into(),
            )),
            EngineBackend::Windowed(e) => Ok(e.advance()),
        }
    }

    /// Replays one recovered WAL frame (see
    /// [`WindowedEngine::replay_frame`]). The static backend ignores the
    /// window tag and ingests the rows.
    ///
    /// # Errors
    /// Propagates ingest validation errors.
    pub fn replay_frame(&mut self, tag: Option<u64>, rows: &[Vec<f64>]) -> Result<(), CoreError> {
        match self {
            EngineBackend::Static(e) => {
                if rows.is_empty() {
                    return Ok(());
                }
                // Through `replay_wal` (not plain ingest) so the engine's
                // replay counters see recovered frames.
                e.replay_wal(std::slice::from_ref(&rows.to_vec())).map(|_| ())
            }
            EngineBackend::Windowed(e) => e.replay_frame(tag, rows),
        }
    }

    /// Answers one rule-mining query.
    ///
    /// # Errors
    /// Propagates arity errors from explicit density thresholds.
    pub fn query(&mut self, query: &RuleQuery) -> Result<QueryOutcome, CoreError> {
        match self {
            EngineBackend::Static(e) => e.query(query),
            EngineBackend::Windowed(e) => e.query(query),
        }
    }

    /// The read-only fast path (see [`DarEngine::query_cached`]).
    ///
    /// # Errors
    /// Propagates arity errors from explicit density thresholds.
    pub fn query_cached(&self, query: &RuleQuery) -> Result<Option<QueryOutcome>, CoreError> {
        match self {
            EngineBackend::Static(e) => e.query_cached(query),
            EngineBackend::Windowed(e) => e.query_cached(query),
        }
    }

    /// Serializes the backend: an engine-v2 binary snapshot for the
    /// static variant, a dar-stream v2 ring snapshot for the windowed one.
    /// [`EngineBackend::restore`] sniffs the header and routes back.
    ///
    /// # Errors
    /// Propagates serialization failures.
    pub fn snapshot(&mut self) -> Result<Vec<u8>, CoreError> {
        match self {
            EngineBackend::Static(e) => e.snapshot(),
            EngineBackend::Windowed(e) => e.snapshot(),
        }
    }

    /// Serializes the backend's *mergeable* view — always a plain
    /// engine-v2 snapshot: all history for the static variant, the live
    /// horizon for the windowed one. This is what a cluster coordinator
    /// pulls; unlike [`EngineBackend::snapshot`], the result feeds
    /// [`DarEngine::merge_parsed_snapshots`] directly.
    ///
    /// # Errors
    /// Propagates serialization failures.
    pub fn pull_snapshot(&mut self) -> Result<Vec<u8>, CoreError> {
        match self {
            EngineBackend::Static(e) => e.snapshot(),
            EngineBackend::Windowed(e) => e.horizon_snapshot(),
        }
    }

    /// Resumes a backend from a snapshot body, routing on the header:
    /// a `dar-stream` header (v1 text or v2 framed-binary) restores a
    /// windowed engine, anything else falls through to
    /// [`DarEngine::restore`] (which also unseals checksummed snapshots
    /// and accepts both engine formats).
    ///
    /// # Errors
    /// Rejects malformed snapshots of either flavor.
    pub fn restore(bytes: &[u8], config: EngineConfig) -> Result<Self, CoreError> {
        let body = dar_durable::unseal_bytes(bytes)
            .map_err(|detail| CoreError::LayoutMismatch(format!("snapshot footer: {detail}")))?
            .0;
        if body.starts_with(b"dar-stream v") {
            return Ok(EngineBackend::Windowed(WindowedEngine::restore(body, config)?));
        }
        // `DarEngine::restore` unseals (and re-verifies) on its own.
        Ok(EngineBackend::Static(DarEngine::restore(bytes, config)?))
    }

    /// The current epoch number.
    pub fn epoch(&self) -> u64 {
        match self {
            EngineBackend::Static(e) => e.epoch(),
            EngineBackend::Windowed(e) => e.epoch(),
        }
    }

    /// Tuples in the mining horizon (all history for static, the live
    /// windows for windowed).
    pub fn tuples(&self) -> u64 {
        match self {
            EngineBackend::Static(e) => e.tuples(),
            EngineBackend::Windowed(e) => e.tuples(),
        }
    }

    /// The partitioning this backend mines under.
    pub fn partitioning(&self) -> &Partitioning {
        match self {
            EngineBackend::Static(e) => e.partitioning(),
            EngineBackend::Windowed(e) => e.partitioning(),
        }
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        match self {
            EngineBackend::Static(e) => e.config(),
            EngineBackend::Windowed(e) => e.config(),
        }
    }

    /// The row width ingest validates against.
    pub fn required_row_width(&self) -> usize {
        match self {
            EngineBackend::Static(e) => e.required_row_width(),
            EngineBackend::Windowed(e) => e.required_row_width(),
        }
    }

    /// Engine statistics.
    pub fn stats(&self) -> EngineStats {
        match self {
            EngineBackend::Static(e) => e.stats(),
            EngineBackend::Windowed(e) => e.stats(),
        }
    }

    /// The cluster summaries of the current epoch, closing it if needed.
    pub fn clusters(&mut self) -> &[ClusterSummary] {
        match self {
            EngineBackend::Static(e) => e.clusters(),
            EngineBackend::Windowed(e) => e.clusters(),
        }
    }

    /// The live horizon for the windowed backend, `None` for static.
    pub fn window_span(&self) -> Option<(u64, u64)> {
        match self {
            EngineBackend::Static(_) => None,
            EngineBackend::Windowed(e) => Some(e.window_span()),
        }
    }
}
