//! The sliding-window ring of per-window ACF sub-forests.

use birch::{AcfForest, BirchConfig};
use dar_core::Partitioning;
use std::collections::VecDeque;

/// Window geometry: how often a boundary falls and how many windows stay
/// live.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowSpec {
    /// Non-empty ingested batches per window (an explicit advance can seal
    /// a window early). Must be ≥ 1.
    pub batches: u64,
    /// Live windows, the open one included. Must be ≥ 1; with one slot
    /// every sealed window retires immediately.
    pub slots: usize,
}

/// How a window leaves the live horizon when the ring overflows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetirePolicy {
    /// Drop the expired slot; the live horizon is re-merged from the
    /// surviving windows when queried.
    Remerge,
    /// Cancel the expired window's summary out of a running total by CF
    /// subtraction ([`AcfForest::subtract`]).
    Subtract,
}

impl RetirePolicy {
    /// The canonical config/snapshot name.
    pub fn name(self) -> &'static str {
        match self {
            RetirePolicy::Remerge => "remerge",
            RetirePolicy::Subtract => "subtract",
        }
    }

    /// Parses a canonical name.
    pub fn parse(name: &str) -> Option<RetirePolicy> {
        match name {
            "remerge" => Some(RetirePolicy::Remerge),
            "subtract" => Some(RetirePolicy::Subtract),
            _ => None,
        }
    }
}

/// One window's Phase I state.
#[derive(Debug, Clone)]
struct WindowSlot {
    seq: u64,
    forest: AcfForest,
    tuples: u64,
}

/// What one [`WindowedForest::advance`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdvanceOutcome {
    /// The window that was just sealed.
    pub sealed_seq: u64,
    /// The newly opened window.
    pub opened_seq: u64,
    /// The window that expired out of the ring, if it overflowed.
    pub retired_seq: Option<u64>,
}

/// A ring of per-window sealed sub-forests plus the open window. Every
/// ingested batch lands in the open window; a boundary (automatic after
/// [`WindowSpec::batches`] non-empty batches, or an explicit
/// [`WindowedForest::advance`]) seals it and opens the next. When the ring
/// exceeds [`WindowSpec::slots`] live windows the oldest retires under the
/// configured [`RetirePolicy`].
///
/// All paths are deterministic: windows seal and retire in sequence order,
/// per-window insertion is the forest's deterministic scan, and the merged
/// live horizon is assembled in sequence order — so at any worker count
/// the merged summary is byte-stable.
#[derive(Debug, Clone)]
pub struct WindowedForest {
    spec: WindowSpec,
    policy: RetirePolicy,
    partitioning: Partitioning,
    birch: BirchConfig,
    initial_thresholds: Vec<f64>,
    sealed: VecDeque<WindowSlot>,
    open: WindowSlot,
    /// Non-empty batches ingested into the open window so far.
    open_batches: u64,
    /// [`RetirePolicy::Subtract`] only: a running forest fed every live
    /// ingest, with retired windows' summaries subtracted back out.
    total: Option<AcfForest>,
}

impl WindowedForest {
    /// Creates an empty windowed forest. `initial_thresholds` is the
    /// per-set diameter threshold every fresh window's forest starts from
    /// (the same value a non-windowed engine's forest would use).
    ///
    /// # Panics
    /// Panics if `spec.batches` or `spec.slots` is zero, or if the
    /// threshold arity differs from the partitioning's set count.
    pub fn new(
        partitioning: Partitioning,
        birch: &BirchConfig,
        initial_thresholds: &[f64],
        spec: WindowSpec,
        policy: RetirePolicy,
    ) -> Self {
        assert!(spec.batches >= 1, "a window must span at least one batch");
        assert!(spec.slots >= 1, "at least one live window");
        let fresh =
            AcfForest::with_initial_thresholds(partitioning.clone(), birch, initial_thresholds);
        let total = match policy {
            RetirePolicy::Subtract => Some(fresh.clone()),
            RetirePolicy::Remerge => None,
        };
        WindowedForest {
            spec,
            policy,
            partitioning,
            birch: birch.clone(),
            initial_thresholds: initial_thresholds.to_vec(),
            sealed: VecDeque::new(),
            open: WindowSlot { seq: 0, forest: fresh, tuples: 0 },
            open_batches: 0,
            total,
        }
    }

    fn fresh_forest(&self) -> AcfForest {
        AcfForest::with_initial_thresholds(
            self.partitioning.clone(),
            &self.birch,
            &self.initial_thresholds,
        )
    }

    /// The window geometry.
    pub fn spec(&self) -> WindowSpec {
        self.spec
    }

    /// The retirement policy.
    pub fn policy(&self) -> RetirePolicy {
        self.policy
    }

    /// The open window's sequence number — the window the next batch lands
    /// in.
    pub fn open_seq(&self) -> u64 {
        self.open.seq
    }

    /// Non-empty batches the open window has absorbed.
    pub fn open_batches(&self) -> u64 {
        self.open_batches
    }

    /// The live horizon as `(oldest live seq, open seq)`, inclusive.
    pub fn window_span(&self) -> (u64, u64) {
        (self.sealed.front().map_or(self.open.seq, |w| w.seq), self.open.seq)
    }

    /// Tuples across the live horizon.
    pub fn live_tuples(&self) -> u64 {
        self.sealed.iter().map(|w| w.tuples).sum::<u64>() + self.open.tuples
    }

    /// Feeds a batch into the open window (and the running total under the
    /// subtraction policy), advancing automatically when the batch fills
    /// the window. Empty batches are no-ops: they neither count toward the
    /// window boundary nor advance — so WAL replay can use empty tagged
    /// frames purely as advance markers.
    ///
    /// Rows must be pre-validated (width and finiteness) by the caller —
    /// the engine layer does this before any forest sees the batch.
    pub fn ingest(
        &mut self,
        rows: &[Vec<f64>],
        pool: &dar_par::ThreadPool,
    ) -> Option<AdvanceOutcome> {
        if rows.is_empty() {
            return None;
        }
        self.open.forest.insert_batch(rows, pool);
        if let Some(total) = self.total.as_mut() {
            total.insert_batch(rows, pool);
        }
        self.open.tuples += rows.len() as u64;
        self.open_batches += 1;
        if self.open_batches >= self.spec.batches {
            return Some(self.advance());
        }
        None
    }

    /// Seals the open window and opens the next; retires the oldest live
    /// window if the ring overflows.
    pub fn advance(&mut self) -> AdvanceOutcome {
        let next_seq = self.open.seq + 1;
        let fresh = self.fresh_forest();
        let sealed = std::mem::replace(
            &mut self.open,
            WindowSlot { seq: next_seq, forest: fresh, tuples: 0 },
        );
        let sealed_seq = sealed.seq;
        self.sealed.push_back(sealed);
        self.open_batches = 0;
        let m = crate::metrics::metrics();
        m.windows_advanced.inc();
        let mut retired_seq = None;
        // `slots` counts the open window too, so the sealed ring holds at
        // most `slots - 1` windows.
        while self.sealed.len() > self.spec.slots.saturating_sub(1) {
            let expired = self.sealed.pop_front().expect("ring just overflowed");
            retired_seq = Some(expired.seq);
            m.windows_retired.inc();
            match self.policy {
                RetirePolicy::Subtract => {
                    m.retired_subtract.inc();
                    self.total
                        .as_mut()
                        .expect("subtract policy keeps a running total")
                        .subtract(expired.forest);
                }
                RetirePolicy::Remerge => {
                    m.retired_remerge.inc();
                    // Dropping the slot is the whole retirement; the live
                    // horizon is re-merged on demand by `merged`.
                }
            }
        }
        AdvanceOutcome { sealed_seq, opened_seq: next_seq, retired_seq }
    }

    /// The merged Phase I state of the live horizon. Under
    /// [`RetirePolicy::Subtract`] this clones the running total; under
    /// [`RetirePolicy::Remerge`] it re-merges the surviving windows'
    /// summaries, in sequence order, into a fresh forest whose per-set
    /// thresholds are the element-wise maximum over the live windows (a
    /// summary absorbed under a threshold must not be re-split under a
    /// smaller one — the same rule `DarEngine::merge_snapshots` applies).
    pub fn merged(&self) -> AcfForest {
        if let Some(total) = &self.total {
            return total.clone();
        }
        self.remerge_live()
    }

    /// The live windows oldest-first, the open window last: `(seq, forest,
    /// tuples)`. This is the snapshot iteration order.
    pub fn live_windows(&self) -> impl Iterator<Item = (u64, &AcfForest, u64)> {
        self.sealed.iter().chain(std::iter::once(&self.open)).map(|w| (w.seq, &w.forest, w.tuples))
    }

    /// Rebuilds a windowed forest from restored per-window state — the
    /// snapshot restore path. `windows` is the live horizon oldest-first
    /// with the open window last (at least the open window must be
    /// present); `open_batches` is the open window's batch count at
    /// snapshot time. The subtraction policy's running total is re-merged
    /// from the live windows (moment-identical to the pre-snapshot total by
    /// ACF additivity).
    ///
    /// # Panics
    /// Panics if `windows` is empty or the spec is degenerate.
    pub fn from_windows(
        partitioning: Partitioning,
        birch: &BirchConfig,
        initial_thresholds: &[f64],
        spec: WindowSpec,
        policy: RetirePolicy,
        windows: Vec<(u64, AcfForest, u64)>,
        open_batches: u64,
    ) -> Self {
        assert!(!windows.is_empty(), "the open window is always live");
        let mut slots: Vec<WindowSlot> = windows
            .into_iter()
            .map(|(seq, forest, tuples)| WindowSlot { seq, forest, tuples })
            .collect();
        let open = slots.pop().expect("non-empty checked");
        let mut wf = WindowedForest {
            spec,
            policy,
            partitioning,
            birch: birch.clone(),
            initial_thresholds: initial_thresholds.to_vec(),
            sealed: slots.into(),
            open,
            open_batches,
            total: None,
        };
        if policy == RetirePolicy::Subtract {
            wf.total = Some(wf.remerge_live());
        }
        wf
    }

    /// A fresh forest holding the live horizon's summaries, merged in
    /// sequence order under element-wise-max thresholds.
    fn remerge_live(&self) -> AcfForest {
        let live: Vec<&WindowSlot> =
            self.sealed.iter().chain(std::iter::once(&self.open)).collect();
        let mut thresholds = self.initial_thresholds.clone();
        for w in &live {
            for (t, s) in thresholds.iter_mut().zip(w.forest.thresholds()) {
                *t = t.max(s);
            }
        }
        let mut merged =
            AcfForest::with_initial_thresholds(self.partitioning.clone(), &self.birch, &thresholds);
        for w in live {
            for (set, acfs) in w.forest.extract_clusters().into_iter().enumerate() {
                for acf in acfs {
                    merged.insert_entry(set, acf);
                }
            }
        }
        merged
    }
}
