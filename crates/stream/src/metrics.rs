//! Global observability handles for the streaming layer (`dar_stream_*`).
//!
//! The window/retire counters are incremented by this crate; the
//! subscription counters are public so `dar-serve`'s churn feed — which
//! owns the sockets — can account events against the same family.

use dar_obs::{global, Counter, Gauge, Histogram};
use std::sync::OnceLock;

/// The streaming-layer metric family.
pub struct StreamMetrics {
    /// `dar_stream_windows_advanced_total`: window boundaries crossed
    /// (auto or explicit).
    pub windows_advanced: Counter,
    /// `dar_stream_windows_retired_total`: windows expired out of the ring.
    pub windows_retired: Counter,
    /// `dar_stream_retired_subtract_total`: retirements taken through the
    /// CF-subtraction path.
    pub retired_subtract: Counter,
    /// `dar_stream_retired_remerge_total`: retirements taken through the
    /// drop-and-re-merge path.
    pub retired_remerge: Counter,
    /// `dar_stream_subscribers`: live churn subscribers.
    pub subscribers: Gauge,
    /// `dar_stream_events_pushed_total`: churn frames handed to subscriber
    /// queues.
    pub events_pushed: Counter,
    /// `dar_stream_events_dropped_total`: churn frames dropped because a
    /// subscriber's bounded queue was full (the subscriber is lagged and
    /// cut, never the server).
    pub events_dropped: Counter,
    /// `dar_stream_diff_ns`: wall time of one rule-set diff.
    pub diff_ns: Histogram,
}

/// The cached handles.
pub fn metrics() -> &'static StreamMetrics {
    static METRICS: OnceLock<StreamMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = global();
        StreamMetrics {
            windows_advanced: r.counter("dar_stream_windows_advanced_total"),
            windows_retired: r.counter("dar_stream_windows_retired_total"),
            retired_subtract: r.counter("dar_stream_retired_subtract_total"),
            retired_remerge: r.counter("dar_stream_retired_remerge_total"),
            subscribers: r.gauge("dar_stream_subscribers"),
            events_pushed: r.counter("dar_stream_events_pushed_total"),
            events_dropped: r.counter("dar_stream_events_dropped_total"),
            diff_ns: r.histogram("dar_stream_diff_ns"),
        }
    })
}
