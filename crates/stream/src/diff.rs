//! Rule-churn diffs over already-encoded rule lines.
//!
//! The diff unit is one rule's canonical wire encoding (the deterministic
//! `dar-serve` JSON codec renders each rule to a byte-stable string), so
//! set membership is plain string equality and a diff of two epochs is
//! itself byte-stable: replaying `added`/`dropped` events in order
//! reconstructs the final rule set exactly.

use std::collections::HashSet;
use std::time::Instant;

/// The churn between two epochs' rule sets.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RuleDiff {
    /// Rules present now but not before, in current-epoch order.
    pub added: Vec<String>,
    /// Rules present before but not now, in previous-epoch order.
    pub dropped: Vec<String>,
}

impl RuleDiff {
    /// True when the two epochs held the same rules.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.dropped.is_empty()
    }
}

/// Diffs two encoded rule sets. `added` keeps `next`'s order and `dropped`
/// keeps `prev`'s order, so the output is a pure function of the two
/// inputs — no hashing order leaks through. Observes
/// [`metrics::diff_ns`](crate::metrics::StreamMetrics::diff_ns).
pub fn diff(prev: &[String], next: &[String]) -> RuleDiff {
    let t = Instant::now();
    let before: HashSet<&str> = prev.iter().map(String::as_str).collect();
    let after: HashSet<&str> = next.iter().map(String::as_str).collect();
    let added = next.iter().filter(|r| !before.contains(r.as_str())).cloned().collect();
    let dropped = prev.iter().filter(|r| !after.contains(r.as_str())).cloned().collect();
    crate::metrics::metrics().diff_ns.observe_duration(t.elapsed());
    RuleDiff { added, dropped }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| (*x).to_string()).collect()
    }

    #[test]
    fn diff_preserves_input_order_and_membership() {
        let prev = s(&["a", "b", "c"]);
        let next = s(&["c", "d", "b", "e"]);
        let d = diff(&prev, &next);
        assert_eq!(d.added, s(&["d", "e"]));
        assert_eq!(d.dropped, s(&["a"]));
        assert!(!d.is_empty());
    }

    #[test]
    fn identical_sets_diff_empty() {
        let rules = s(&["r1", "r2"]);
        assert!(diff(&rules, &rules).is_empty());
        assert!(diff(&[], &[]).is_empty());
    }

    #[test]
    fn replaying_diffs_reconstructs_the_final_set() {
        let epochs = [s(&["a", "b"]), s(&["b", "c", "d"]), s(&["d"]), s(&["d", "e", "a"])];
        let mut replayed: Vec<String> = Vec::new();
        for window in epochs.windows(2) {
            let d = diff(&window[0], &window[1]);
            replayed = window[0].clone();
            replayed.retain(|r| !d.dropped.contains(r));
            replayed.extend(d.added.clone());
            let mut want = window[1].clone();
            want.sort();
            replayed.sort();
            assert_eq!(replayed, want);
        }
        assert!(!replayed.is_empty());
    }
}
