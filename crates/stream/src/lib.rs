//! # dar-stream — sliding-window mining over the DAR engine
//!
//! The long-lived [`dar_engine::DarEngine`] mines *all* history: every
//! ingested tuple stays in the Phase I forest forever. This crate bounds
//! the mining horizon instead — rules reflect only the most recent data —
//! and reports how the rule set *churns* as that horizon slides:
//!
//! * [`WindowedForest`] keeps a ring of per-window ACF sub-forests. A
//!   window boundary falls every `W` ingested batches (or on an explicit
//!   advance), and when the ring is full the oldest window *retires*:
//!   either its slot is dropped and the survivors are re-merged on demand
//!   ([`RetirePolicy::Remerge`]) or its summary is cancelled out of a
//!   running total by CF subtraction ([`RetirePolicy::Subtract`],
//!   `birch::AcfForest::subtract` — additivity, Theorem 6.1 / Eq. 7, runs
//!   both ways). Both paths are deterministic at any worker count.
//! * [`WindowedEngine`] wraps a [`dar_engine::DarEngine`] so Phase II
//!   queries mine only the live horizon; whenever a window retires the
//!   inner engine is rebuilt from the merged survivors
//!   ([`dar_engine::DarEngine::with_forest`]).
//! * [`EngineBackend`] is the serving-layer switch between the classic
//!   all-history engine and the windowed one, with one API for ingest,
//!   advance, query, snapshot, and WAL-frame replay.
//! * [`diff`] computes deterministic `{added, dropped}` rule-churn diffs
//!   over already-encoded rule lines — the payload `dar-serve` pushes to
//!   `subscribe` connections after every window advance.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backend;
mod diff;
pub mod metrics;
mod window;
mod windowed_engine;

pub use backend::EngineBackend;
pub use diff::{diff, RuleDiff};
pub use window::{AdvanceOutcome, RetirePolicy, WindowSpec, WindowedForest};
pub use windowed_engine::{WindowedEngine, WindowedIngest};
