//! Sliding-window correctness: windowed mining must equal one-shot mining
//! of exactly the live rows, at any thread count, under both retirement
//! policies, across snapshot/restore and WAL-frame replay.

use dar_core::{Metric, Partitioning, Schema};
use dar_engine::{DarEngine, EngineConfig};
use dar_stream::{EngineBackend, RetirePolicy, WindowSpec, WindowedEngine};
use mining::RuleQuery;
use std::collections::BTreeMap;

fn config(threads: usize) -> EngineConfig {
    let mut config = EngineConfig::default();
    config.birch.initial_threshold = 1.0;
    config.birch.memory_budget = usize::MAX;
    config.min_support_frac = 0.2;
    config.threads = threads;
    config
}

fn partitioning() -> Partitioning {
    Partitioning::per_attribute(&Schema::interval_attrs(2), Metric::Euclidean)
}

/// Rows with dyadic jitter (0.25 steps): fp sums are exact in any
/// grouping, so re-merged window summaries match the direct scan to the
/// bit and rule equality is byte-equality.
fn dyadic_rows(n: usize, offset: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| {
            let jitter = ((i + offset) % 4) as f64 * 0.25;
            if (i + offset).is_multiple_of(2) {
                vec![jitter, 100.0 + jitter]
            } else {
                vec![50.0 + jitter, 200.0 + jitter]
            }
        })
        .collect()
}

fn windowed(policy: RetirePolicy, threads: usize) -> WindowedEngine {
    WindowedEngine::new(
        partitioning(),
        config(threads),
        WindowSpec { batches: 2, slots: 2 },
        policy,
    )
    .unwrap()
}

/// One-shot control: a fresh engine over exactly `rows`.
fn oneshot_rules(rows: &[Vec<f64>]) -> Vec<mining::rules::Dar> {
    let mut e = DarEngine::new(partitioning(), config(1)).unwrap();
    e.ingest(rows).unwrap();
    e.query(&RuleQuery::default()).unwrap().rules
}

#[test]
fn windowed_rules_equal_oneshot_over_live_rows() {
    for policy in [RetirePolicy::Remerge, RetirePolicy::Subtract] {
        for threads in [1usize, 2, 4] {
            let mut w = windowed(policy, threads);
            let mut rows_by_window: BTreeMap<u64, Vec<Vec<f64>>> = BTreeMap::new();
            for batch in 0..6 {
                let rows = dyadic_rows(20, batch);
                let info = w.ingest(&rows).unwrap();
                rows_by_window.entry(info.window_seq).or_default().extend(rows);
                let (oldest, newest) = info.window_span;
                let live: Vec<Vec<f64>> = (oldest..=newest)
                    .flat_map(|s| rows_by_window.get(&s).cloned().unwrap_or_default())
                    .collect();
                let got = w.query(&RuleQuery::default()).unwrap();
                assert_eq!(
                    got.rules,
                    oneshot_rules(&live),
                    "policy {policy:?} threads {threads} batch {batch}: windowed \
                     rules diverge from one-shot over the live rows"
                );
                assert_eq!(w.tuples(), live.len() as u64, "live tuple count");
            }
            // The horizon really slid: early windows are gone.
            let (oldest, _) = w.window_span();
            assert!(oldest >= 1, "policy {policy:?}: no window ever retired");
        }
    }
}

#[test]
fn explicit_advance_seals_early_and_empty_batches_are_noops() {
    let mut w = windowed(RetirePolicy::Remerge, 1);
    let rows = dyadic_rows(20, 0);
    let info = w.ingest(&rows).unwrap();
    assert_eq!(info.window_seq, 0);
    assert!(!info.advanced, "one batch of two does not fill the window");
    // Empty batches change nothing.
    let noop = w.ingest(&[]).unwrap();
    assert!(!noop.advanced);
    assert_eq!(w.window_span(), (0, 0));
    // Explicit advance seals window 0 after a single batch.
    let out = w.advance();
    assert_eq!(out.sealed_seq, 0);
    assert_eq!(out.opened_seq, 1);
    assert_eq!(out.retired_seq, None, "two slots: first seal fits the ring");
    let info = w.ingest(&dyadic_rows(20, 1)).unwrap();
    assert_eq!(info.window_seq, 1);
    // Second explicit advance overflows the two-slot ring: window 0 retires.
    let out = w.advance();
    assert_eq!(out.retired_seq, Some(0));
    assert_eq!(w.window_span(), (1, 2));
    assert_eq!(w.tuples(), 20, "window 0's rows left the horizon");
}

#[test]
fn snapshot_restore_round_trips_ring_and_rules() {
    for policy in [RetirePolicy::Remerge, RetirePolicy::Subtract] {
        let mut w = windowed(policy, 1);
        for batch in 0..5 {
            w.ingest(&dyadic_rows(20, batch)).unwrap();
        }
        let want = w.query(&RuleQuery::default()).unwrap().rules;
        let span = w.window_span();
        let text = w.snapshot().unwrap();

        let mut back = WindowedEngine::restore(&text, config(1)).unwrap();
        assert_eq!(back.window_span(), span, "policy {policy:?}: ring shape");
        assert_eq!(back.policy(), policy);
        assert_eq!(back.spec(), WindowSpec { batches: 2, slots: 2 });
        assert_eq!(back.tuples(), w.tuples());
        let got = back.query(&RuleQuery::default()).unwrap().rules;
        assert_eq!(got, want, "policy {policy:?}: restored rules diverge");

        // The restored engine keeps sliding identically.
        let extra = dyadic_rows(20, 9);
        let a = w.ingest(&extra).unwrap();
        let b = back.ingest(&extra).unwrap();
        assert_eq!(a, b, "policy {policy:?}: post-restore ingest diverges");
        assert_eq!(
            w.query(&RuleQuery::default()).unwrap().rules,
            back.query(&RuleQuery::default()).unwrap().rules,
            "policy {policy:?}: post-restore rules diverge"
        );
    }
}

/// Pre-v2 ring snapshots (text header + line-counted embedded v1 engine
/// snapshots) must keep restoring. The fixture is reframed from a live
/// ring so it always matches the current window geometry.
#[test]
fn v1_ring_snapshots_still_restore() {
    let mut live = windowed(RetirePolicy::Remerge, 1);
    for batch in 0..5 {
        live.ingest(&dyadic_rows(20, batch)).unwrap();
    }
    let want = live.query(&RuleQuery::default()).unwrap().rules;
    let v2 = live.snapshot().unwrap();

    // Reframe the v2 snapshot in the pre-v2 text layout: same header with
    // the old version tag, each window re-serialized with the engine's v1
    // text writer and framed by line count.
    let pool = dar_par::ThreadPool::serial();
    let header_end = v2.iter().position(|&b| b == b'\n').unwrap();
    let mut v1 = std::str::from_utf8(&v2[..header_end]).unwrap().replacen(
        "dar-stream v2 ",
        "dar-stream v1 ",
        1,
    );
    v1.push('\n');
    let mut pos = header_end + 1;
    while pos < v2.len() {
        let line_end = pos + v2[pos..].iter().position(|&b| b == b'\n').unwrap();
        let section = std::str::from_utf8(&v2[pos..line_end]).unwrap();
        let bytes_at = section.find("bytes=").unwrap() + "bytes=".len();
        let body_bytes: usize = section[bytes_at..].parse().unwrap();
        pos = line_end + 1;
        let snap =
            dar_engine::snapshot::parse_snapshot_bytes(&v2[pos..pos + body_bytes], &pool).unwrap();
        pos += body_bytes;
        let body = dar_engine::snapshot::write_snapshot(
            snap.epoch,
            snap.tuples,
            &snap.partitioning,
            &snap.thresholds,
            &snap.clusters,
        )
        .unwrap();
        v1.push_str(&format!("window seq={} lines={}\n", snap.epoch, body.lines().count()));
        v1.push_str(&body);
    }

    let mut back = WindowedEngine::restore(v1.as_bytes(), config(1)).unwrap();
    assert_eq!(back.window_span(), live.window_span());
    assert_eq!(back.tuples(), live.tuples());
    assert_eq!(back.query(&RuleQuery::default()).unwrap().rules, want);
}

#[test]
fn replaying_tagged_frames_reconstructs_the_ring() {
    // Record the frame log a windowed server would write: batches tagged
    // with the window they landed in, explicit advances as empty frames
    // tagged with the newly opened window.
    let mut live = windowed(RetirePolicy::Subtract, 1);
    let mut frames: Vec<(Option<u64>, Vec<Vec<f64>>)> = Vec::new();
    for batch in 0..3 {
        let rows = dyadic_rows(20, batch);
        let info = live.ingest(&rows).unwrap();
        frames.push((Some(info.window_seq), rows));
        if batch == 1 {
            let out = live.advance();
            frames.push((Some(out.opened_seq), Vec::new()));
        }
    }
    let mut replayed = windowed(RetirePolicy::Subtract, 1);
    for (tag, rows) in &frames {
        replayed.replay_frame(*tag, rows).unwrap();
    }
    assert_eq!(replayed.window_span(), live.window_span());
    assert_eq!(replayed.tuples(), live.tuples());
    assert_eq!(
        replayed.query(&RuleQuery::default()).unwrap().rules,
        live.query(&RuleQuery::default()).unwrap().rules,
    );
}

#[test]
fn backend_routes_advance_and_snapshot_by_variant() {
    let mut fixed: EngineBackend = DarEngine::new(partitioning(), config(1)).unwrap().into();
    assert!(!fixed.is_windowed());
    assert!(fixed.window_span().is_none());
    assert!(fixed.advance().is_err(), "static backend has no windows");

    let mut windowed: EngineBackend = windowed(RetirePolicy::Remerge, 1).into();
    assert!(windowed.is_windowed());
    windowed.ingest(&dyadic_rows(20, 0)).unwrap();
    windowed.advance().unwrap();
    assert_eq!(windowed.window_span(), Some((0, 1)));

    // Snapshot/restore sniffs the header and restores the right variant.
    let bytes = windowed.snapshot().unwrap();
    assert!(bytes.starts_with(b"dar-stream v2 "));
    let back = EngineBackend::restore(&bytes, config(1)).unwrap();
    assert!(back.is_windowed());
    assert_eq!(back.window_span(), Some((0, 1)));

    fixed.ingest(&dyadic_rows(20, 0)).unwrap();
    let bytes = fixed.snapshot().unwrap();
    let back = EngineBackend::restore(&bytes, config(1)).unwrap();
    assert!(!back.is_windowed());
    assert_eq!(back.tuples(), 20);
}
