//! # interval-rules
//!
//! A from-scratch Rust implementation of **distance-based association rules
//! over interval data** (R. J. Miller & Y. Yang, SIGMOD 1997), including
//! every substrate the paper depends on:
//!
//! * [`core`] *(re-exported from `dar-core`)* — relations, schemas,
//!   attribute partitionings, distance metrics, and the CF/ACF summary
//!   algebra (Equations 2–7 of the paper);
//! * [`birch`] — the adaptive BIRCH-style ACF-tree clustering engine of
//!   Phase I, with memory budgeting, threshold-raising rebuilds and outlier
//!   paging (Sections 3, 4.3.1, 6.1);
//! * [`classic`] — the classical Apriori baseline and the Srikant–Agrawal
//!   quantitative-association-rule baseline (equi-depth partitioning with
//!   K-partial completeness) that the paper critiques;
//! * [`mining`] — Phase II: the clustering graph (Dfn 6.1), maximal-clique
//!   enumeration, DAR generation of arbitrary arity (Dfns 5.1–5.3), the
//!   degree-of-association interest measure with the Theorem 5.1/5.2
//!   correspondence, and the full pipeline;
//! * [`datagen`] — seeded synthetic workloads reproducing every figure of
//!   the paper's evaluation (see `DESIGN.md` for the WBCD substitution);
//! * [`engine`] *(re-exported from `dar-engine`)* — a long-lived
//!   incremental mining engine: batch ingest without Phase I restarts,
//!   epoch snapshots, and cached Phase II artifacts for cheap re-tuned
//!   rule queries.
//!
//! ## Quickstart
//!
//! ```
//! use interval_rules::prelude::*;
//!
//! // Two co-occurring value blocks over three interval attributes.
//! let mut builder = RelationBuilder::new(Schema::interval_attrs(3));
//! for i in 0..60 {
//!     let jitter = (i % 6) as f64 * 0.01;
//!     if i % 2 == 0 {
//!         builder.push_row(&[jitter, 100.0 + jitter, 5.0 + jitter]).unwrap();
//!     } else {
//!         builder.push_row(&[50.0 + jitter, 200.0 + jitter, 9.0 + jitter]).unwrap();
//!     }
//! }
//! let relation = builder.finish();
//!
//! // One attribute set per attribute, Euclidean distances.
//! let partitioning = Partitioning::per_attribute(relation.schema(), Metric::Euclidean);
//!
//! let mut config = DarConfig::default();
//! config.birch.initial_threshold = 1.0;
//! config.min_support_frac = 0.1;
//! let result = DarMiner::new(config).mine(&relation, &partitioning).expect("valid partitioning");
//!
//! assert!(result.stats.rules > 0);
//! for rule in result.rules.iter().take(3) {
//!     println!(
//!         "{}",
//!         interval_rules::mining::describe::describe_rule(
//!             rule, result.graph.clusters(), relation.schema(), &partitioning)
//!     );
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use birch;
pub use classic;
pub use dar_core as core;
pub use dar_engine as engine;
pub use datagen;
pub use mining;

/// The common imports for working with the miner.
pub mod prelude {
    pub use birch::BirchConfig;
    pub use dar_core::{
        Attribute, AttributeKind, Interval, Metric, Partitioning, Relation, RelationBuilder, Schema,
    };
    pub use dar_engine::{DarEngine, EngineConfig, EngineStats};
    pub use mining::{ClusterDistance, DarConfig, DarMiner, DensitySpec, MineResult, RuleQuery};
}
